#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <set>
#include <vector>

namespace ssle::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound) << "bound=" << bound;
    }
  }
}

TEST(Rng, BelowZeroAndOneAreZero) {
  Rng rng(7);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit
}

TEST(Rng, RangeAtInt64Extremes) {
  // Regression: `hi - lo + 1` used to be computed in *signed* arithmetic —
  // UB/wrap whenever the span overflows int64.  The span is now widened
  // through uint64 (where wrap is defined and correct).
  Rng rng(21);
  // Degenerate single-point range.
  EXPECT_EQ(rng.range(5, 5), 5);
  EXPECT_EQ(rng.range(std::numeric_limits<std::int64_t>::min(),
                      std::numeric_limits<std::int64_t>::min()),
            std::numeric_limits<std::int64_t>::min());
  // Tight window at the top of the domain.
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(std::numeric_limits<std::int64_t>::max() - 3,
                             std::numeric_limits<std::int64_t>::max());
    EXPECT_GE(v, std::numeric_limits<std::int64_t>::max() - 3);
  }
  // Span larger than int64 can hold (lo < 0 < hi, width ≈ 1.5 · 2^63):
  // the old signed subtraction overflowed here.
  const std::int64_t lo = std::numeric_limits<std::int64_t>::min() / 4 * 3;
  const std::int64_t hi = std::numeric_limits<std::int64_t>::max() / 4 * 3;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
  // Full int64 domain: span wraps to 0 in uint64, meaning "every value".
  bool saw_negative = false, saw_positive = false;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(std::numeric_limits<std::int64_t>::min(),
                             std::numeric_limits<std::int64_t>::max());
    saw_negative |= v < 0;
    saw_positive |= v > 0;
  }
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_positive);
}

TEST(Rng, RangeExtremesStayUniformish) {
  // A wide two-bucket sanity check on an overflowing span: halves of the
  // range should be hit roughly equally.
  Rng rng(23);
  const std::int64_t lo = std::numeric_limits<std::int64_t>::min() + 2;
  const std::int64_t hi = std::numeric_limits<std::int64_t>::max() - 2;
  int below_zero = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) below_zero += rng.range(lo, hi) < 0;
  EXPECT_NEAR(static_cast<double>(below_zero) / draws, 0.5, 0.02);
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 16;
  constexpr int kDraws = 160000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  // Chi-square with 15 dof; 99.9% quantile ≈ 37.7.
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0.0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 37.7);
}

TEST(Rng, RealInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.real();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, CoinIsFair) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += rng.coin();
  EXPECT_NEAR(heads / 100000.0, 0.5, 0.01);
}

TEST(Rng, SubstreamsAreIndependentStreams) {
  EXPECT_NE(substream(1, 0), substream(1, 1));
  EXPECT_NE(substream(1, 0), substream(2, 0));
  EXPECT_EQ(substream(5, 3), substream(5, 3));
}

TEST(RngSplit, SameParentStateAndKeyGiveTheSameChild) {
  Rng a(42);
  Rng b(42);
  Rng child_a = a.split(7);
  Rng child_b = b.split(7);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(child_a.next(), child_b.next());
  }
}

TEST(RngSplit, DoesNotAdvanceTheParent) {
  Rng with_split(42);
  Rng without_split(42);
  (void)with_split.split(0);
  (void)with_split.split(123456789);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(with_split.next(), without_split.next());
  }
}

TEST(RngSplit, ChildIsIndependentOfParentDrawInterleaving) {
  // Drawing from the child never perturbs the parent, and vice versa: the
  // sharded engine interleaves shard-stream draws with engine-stream draws
  // in a hardware-dependent order, so this is the property that makes its
  // trajectories deterministic.
  Rng parent(9);
  Rng child = parent.split(3);
  std::vector<std::uint64_t> child_seq;
  for (int i = 0; i < 50; ++i) child_seq.push_back(child.next());

  Rng parent2(9);
  Rng child2 = parent2.split(3);
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(child2.next(), child_seq[i]);
    (void)parent2.next();  // interleave parent draws
  }
}

TEST(RngSplit, DistinctKeysAndDistinctParentsGiveDistinctChildren) {
  Rng parent(42);
  std::vector<std::uint64_t> firsts;
  for (std::uint64_t k = 0; k < 64; ++k) {
    firsts.push_back(parent.split(k).next());
  }
  firsts.push_back(parent.next());  // the parent's own stream differs too
  std::sort(firsts.begin(), firsts.end());
  EXPECT_EQ(std::adjacent_find(firsts.begin(), firsts.end()), firsts.end());

  // A parent advanced by one draw yields entirely different children.
  Rng p1(42), p2(42);
  (void)p2.next();
  EXPECT_NE(p1.split(5).next(), p2.split(5).next());
}

TEST(RngSplit, ChildStreamsLookUniform) {
  // Same chi-square style as the seeded-stream test: 60000 draws from a
  // split child over 6 bins, 5 degrees of freedom, 99.999% cutoff ≈ 25.7.
  Rng parent(1234);
  Rng child = parent.split(17);
  std::array<int, 6> bins{};
  for (int i = 0; i < 60000; ++i) bins[child.below(6)] += 1;
  double chi2 = 0.0;
  for (const int b : bins) {
    const double d = b - 10000.0;
    chi2 += d * d / 10000.0;
  }
  EXPECT_LT(chi2, 25.7);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const auto a = sm.next();
  const auto b = sm.next();
  EXPECT_NE(a, b);
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), a);
  EXPECT_EQ(sm2.next(), b);
}

}  // namespace
}  // namespace ssle::util
