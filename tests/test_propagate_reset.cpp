#include "core/propagate_reset.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/elect_leader.hpp"
#include "pp/scheduler.hpp"

namespace ssle::core {
namespace {

struct ResetHarness {
  Params params;
  std::vector<Agent> agents;
  pp::UniformScheduler sched;
  util::Rng rng;

  explicit ResetHarness(std::uint32_t n, std::uint64_t seed = 1)
      : params(Params::make(n, std::max(1u, n / 4))),
        sched(n, seed),
        rng(util::substream(seed, 4)) {
    ElectLeader protocol(params);
    for (std::uint32_t i = 0; i < n; ++i) {
      agents.push_back(protocol.initial_state(i));
    }
  }

  /// Steps the full ElectLeader wrapper (resets interleave with ranking).
  void step(std::uint64_t count) {
    ElectLeader protocol(params);
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto [a, b] = sched.next();
      protocol.interact(agents[a], agents[b], rng);
    }
  }

  std::uint32_t count_resetting() const {
    std::uint32_t k = 0;
    for (const auto& a : agents) k += a.role == Role::kResetting;
    return k;
  }

  bool fully_dormant() const {
    for (const auto& a : agents) {
      if (!is_dormant(a)) return false;
    }
    return true;
  }
};

TEST(TriggerReset, SetsTriggeredState) {
  const Params p = Params::make(32, 8);
  Agent a;
  a.role = Role::kVerifying;
  trigger_reset(p, a);
  EXPECT_EQ(a.role, Role::kResetting);
  EXPECT_EQ(a.reset.reset_count, p.reset_count_max);
  EXPECT_EQ(a.reset.delay_timer, p.delay_timer_max);
}

TEST(ResetAgent, ProducesCleanRanker) {
  const Params p = Params::make(32, 8);
  Agent a;
  a.role = Role::kResetting;
  a.rank = 17;
  reset_agent(p, a);
  EXPECT_EQ(a.role, Role::kRanking);
  EXPECT_EQ(a.countdown, p.countdown_max);
  EXPECT_EQ(a.rank, 1u);
  EXPECT_EQ(a.ar.type, ArType::kLeaderElection);
  EXPECT_FALSE(a.ar.le.drawn);
}

TEST(PropagateReset, TriggeredAgentInfectsComputing) {
  const Params p = Params::make(32, 8);
  Agent u, v;
  trigger_reset(p, u);
  v.role = Role::kRanking;
  propagate_reset(p, u, v);
  EXPECT_EQ(v.role, Role::kResetting);
  // Both carry the decremented max count.
  EXPECT_EQ(u.reset.reset_count, p.reset_count_max - 1);
  EXPECT_EQ(v.reset.reset_count, p.reset_count_max - 1);
}

TEST(PropagateReset, CountsMaxMergeAndDecrement) {
  const Params p = Params::make(32, 8);
  Agent u, v;
  trigger_reset(p, u);
  trigger_reset(p, v);
  u.reset.reset_count = 10;
  v.reset.reset_count = 3;
  propagate_reset(p, u, v);
  EXPECT_EQ(u.reset.reset_count, 9u);
  EXPECT_EQ(v.reset.reset_count, 9u);
}

TEST(PropagateReset, DormantAgentWokenByComputingAgent) {
  const Params p = Params::make(32, 8);
  Agent u, v;
  trigger_reset(p, u);
  u.reset.reset_count = 0;  // dormant
  u.reset.delay_timer = p.delay_timer_max;
  v.role = Role::kRanking;
  propagate_reset(p, u, v);
  EXPECT_EQ(u.role, Role::kRanking);  // woke up via Reset
  EXPECT_EQ(u.countdown, p.countdown_max);
}

TEST(PropagateReset, DelayTimerExpiryWakesDormantPair) {
  const Params p = Params::make(32, 8);
  Agent u, v;
  trigger_reset(p, u);
  trigger_reset(p, v);
  u.reset.reset_count = 0;
  v.reset.reset_count = 0;
  u.reset.delay_timer = 1;
  v.reset.delay_timer = 5;
  propagate_reset(p, u, v);
  // u's timer hits 0 → Reset(u); v then sees a computing partner → wakes.
  EXPECT_EQ(u.role, Role::kRanking);
  EXPECT_EQ(v.role, Role::kRanking);
}

TEST(PropagateReset, ArmsDelayTimerWhenCountJustBecameZero) {
  const Params p = Params::make(32, 8);
  Agent u, v;
  trigger_reset(p, u);
  trigger_reset(p, v);
  u.reset.reset_count = 1;
  v.reset.reset_count = 1;
  u.reset.delay_timer = 3;  // stale value; must be re-armed
  propagate_reset(p, u, v);
  EXPECT_EQ(u.reset.reset_count, 0u);
  EXPECT_EQ(u.reset.delay_timer, p.delay_timer_max);
  EXPECT_EQ(u.role, Role::kResetting);
}

// --- Phase behaviour (Corollary C.3), via the full wrapper -----------------

class ResetPhases : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ResetPhases, TriggeredToDormantToComputing) {
  const std::uint32_t n = GetParam();
  ResetHarness h(n);
  trigger_reset(h.params, h.agents[0]);

  // Phase 1: within O(n log n) interactions the population passes through
  // a fully dormant configuration (Lemma C.1).
  const std::uint64_t L = Params::log2ceil(n);
  bool saw_dormant = false;
  for (std::uint64_t t = 0; t < 400 * n * L && !saw_dormant; t += n / 2 + 1) {
    h.step(n / 2 + 1);
    saw_dormant = h.fully_dormant();
  }
  EXPECT_TRUE(saw_dormant) << "n=" << n;

  // Phase 2: from dormant, everyone awakens into computing states within
  // O(n·D_max) interactions (Theorem C.2).
  std::uint64_t budget = 20ull * n * h.params.delay_timer_max + 400 * n * L;
  while (budget > 0 && h.count_resetting() > 0) {
    const std::uint64_t chunk = std::min<std::uint64_t>(n, budget);
    h.step(chunk);
    budget -= chunk;
  }
  EXPECT_EQ(h.count_resetting(), 0u) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, ResetPhases,
                         ::testing::Values(8u, 16u, 32u, 64u, 128u));

TEST(PropagateReset, ResetWaveReachesEveryAgent) {
  ResetHarness h(64, 9);
  h.step(5000);  // let ranking get going
  trigger_reset(h.params, h.agents[0]);
  // The wave must sweep the whole population: track the peak simultaneous
  // resetter count over the following interactions.
  std::uint32_t peak = 0;
  for (int t = 0; t < 3000; ++t) {
    h.step(16);
    peak = std::max(peak, h.count_resetting());
  }
  EXPECT_EQ(peak, 64u);
}

}  // namespace
}  // namespace ssle::core
