#include <gtest/gtest.h>

#include "baselines/cai_izumi_wada.hpp"
#include "baselines/loose_leader.hpp"
#include "baselines/silent_ssr.hpp"
#include "pp/simulator.hpp"

namespace ssle::baselines {
namespace {

// --- Cai–Izumi–Wada ---------------------------------------------------------

TEST(CaiIzumiWada, EqualRanksAdvanceResponder) {
  CaiIzumiWada p(4);
  CaiIzumiWada::State u{2}, v{2};
  util::Rng rng(1);
  p.interact(u, v, rng);
  EXPECT_EQ(u.rank, 2u);
  EXPECT_EQ(v.rank, 3u);
}

TEST(CaiIzumiWada, RankWrapsAround) {
  CaiIzumiWada p(4);
  CaiIzumiWada::State u{4}, v{4};
  util::Rng rng(1);
  p.interact(u, v, rng);
  EXPECT_EQ(v.rank, 1u);
}

TEST(CaiIzumiWada, DistinctRanksSilent) {
  CaiIzumiWada p(4);
  CaiIzumiWada::State u{1}, v{3};
  util::Rng rng(1);
  p.interact(u, v, rng);
  EXPECT_EQ(u.rank, 1u);
  EXPECT_EQ(v.rank, 3u);
}

class CiwSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CiwSweep, StabilizesToPermutationFromAllOnes) {
  const std::uint32_t n = GetParam();
  CaiIzumiWada protocol(n);
  pp::Simulator<CaiIzumiWada> sim(protocol, 5);
  const auto res = sim.run_until(
      [&](const pp::Population<CaiIzumiWada>& pop, std::uint64_t) {
        return protocol.is_stable(pop.states());
      },
      400ull * n * n);
  ASSERT_TRUE(res.converged) << "n=" << n;
  int leaders = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    leaders += CaiIzumiWada::is_leader(sim.population()[i]);
  }
  EXPECT_EQ(leaders, 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CiwSweep,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u, 64u));

TEST(CaiIzumiWada, SelfStabilizesFromAdversarialRanks) {
  const std::uint32_t n = 32;
  CaiIzumiWada protocol(n);
  std::vector<CaiIzumiWada::State> config(n);
  util::Rng gen(7);
  for (auto& s : config) {
    s.rank = static_cast<std::uint32_t>(1 + gen.below(n));
  }
  pp::Population<CaiIzumiWada> pop(std::move(config));
  pp::Simulator<CaiIzumiWada> sim(protocol, std::move(pop), 8);
  const auto res = sim.run_until(
      [&](const pp::Population<CaiIzumiWada>& p, std::uint64_t) {
        return protocol.is_stable(p.states());
      },
      400ull * n * n);
  EXPECT_TRUE(res.converged);
}

TEST(CaiIzumiWada, StableConfigIsSilent) {
  const std::uint32_t n = 8;
  CaiIzumiWada protocol(n);
  std::vector<CaiIzumiWada::State> config(n);
  for (std::uint32_t i = 0; i < n; ++i) config[i].rank = i + 1;
  auto snapshot = config;
  util::Rng rng(9);
  for (std::uint32_t a = 0; a < n; ++a) {
    for (std::uint32_t b = 0; b < n; ++b) {
      if (a != b) protocol.interact(config[a], config[b], rng);
    }
  }
  EXPECT_EQ(config, snapshot);
}

// --- Silent SSR baseline ----------------------------------------------------

class SsrSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SsrSweep, StabilizesToPermutation) {
  const std::uint32_t n = GetParam();
  SilentSsrBaseline protocol(n);
  pp::Simulator<SilentSsrBaseline> sim(protocol, 11);
  const auto res = sim.run_until(
      [&](const pp::Population<SilentSsrBaseline>& pop, std::uint64_t) {
        return protocol.is_stable(pop.states());
      },
      3000ull * n * (32 - __builtin_clz(n | 1)));
  ASSERT_TRUE(res.converged) << "n=" << n;
  int leaders = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    leaders += SilentSsrBaseline::is_leader(sim.population()[i]);
  }
  EXPECT_EQ(leaders, 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SsrSweep,
                         ::testing::Values(4u, 8u, 16u, 32u, 64u, 128u));

TEST(SilentSsr, DirectNameCollisionBumpsEpoch) {
  SilentSsrBaseline p(8);
  SilentSsrBaseline::State u, v;
  util::Rng rng(1);
  u.epoch = v.epoch = 0;
  u.name = v.name = 77;
  u.names = {77};
  v.names = {77};
  p.interact(u, v, rng);
  EXPECT_GT(u.epoch, 0u);
  EXPECT_EQ(u.epoch, v.epoch);
  EXPECT_NE(u.name, v.name);  // w.h.p. in [n³]; equal would re-bump later
}

TEST(SilentSsr, EpochEpidemicResetsStragglers) {
  SilentSsrBaseline p(8);
  SilentSsrBaseline::State u, v;
  util::Rng rng(2);
  u.epoch = 3;
  u.name = 5;
  u.names = {5};
  v.epoch = 1;
  v.name = 6;
  v.names = {6};
  v.rank = 4;
  p.interact(u, v, rng);
  EXPECT_EQ(v.epoch, 3u);
  EXPECT_EQ(v.rank, 0u);  // rank dropped on epoch change
}

TEST(SilentSsr, RecoversFromPlantedDuplicateNames) {
  const std::uint32_t n = 16;
  SilentSsrBaseline protocol(n);
  std::vector<SilentSsrBaseline::State> config(n);
  for (auto& s : config) {
    s.name = 42;  // everyone shares one name
    s.names = {42};
  }
  pp::Population<SilentSsrBaseline> pop(std::move(config));
  pp::Simulator<SilentSsrBaseline> sim(protocol, std::move(pop), 13);
  const auto res = sim.run_until(
      [&](const pp::Population<SilentSsrBaseline>& c, std::uint64_t) {
        return protocol.is_stable(c.states());
      },
      2000000);
  EXPECT_TRUE(res.converged);
}

// --- Loose leader election ---------------------------------------------------

TEST(LooseLeader, LeaderFightDemotesResponder) {
  LooseLeaderElection p(16);
  LooseLeaderElection::State u{true, 3}, v{true, 9};
  util::Rng rng(1);
  p.interact(u, v, rng);
  EXPECT_TRUE(u.leader);
  EXPECT_FALSE(v.leader);
}

TEST(LooseLeader, HeartbeatRefillsTimers) {
  LooseLeaderElection p(16);
  LooseLeaderElection::State u{true, 3}, v{false, 1};
  util::Rng rng(1);
  p.interact(u, v, rng);
  EXPECT_EQ(u.timer, p.timeout());
  EXPECT_EQ(v.timer, p.timeout());
}

TEST(LooseLeader, TimeoutPromotesInitiator) {
  LooseLeaderElection p(16);
  LooseLeaderElection::State u{false, 1}, v{false, 0};
  util::Rng rng(1);
  p.interact(u, v, rng);
  EXPECT_TRUE(u.leader);
}

class LooseSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LooseSweep, ConvergesToSingleLeaderAndHolds) {
  const std::uint32_t n = GetParam();
  LooseLeaderElection protocol(n);
  pp::Simulator<LooseLeaderElection> sim(protocol, 17);
  const auto res = sim.run_until(
      [&](const pp::Population<LooseLeaderElection>& pop, std::uint64_t) {
        return protocol.leader_count(pop.states()) == 1;
      },
      4000ull * n);
  ASSERT_TRUE(res.converged) << "n=" << n;
  // Holding: stays a unique leader for a decent stretch afterwards.
  for (int round = 0; round < 50; ++round) {
    sim.step(n);
    ASSERT_EQ(protocol.leader_count(sim.population().states()), 1u)
        << "n=" << n << " round=" << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LooseSweep,
                         ::testing::Values(8u, 16u, 32u, 64u, 128u));

TEST(LooseLeader, RecoversFromAllLeaders) {
  const std::uint32_t n = 32;
  LooseLeaderElection protocol(n);
  std::vector<LooseLeaderElection::State> config(
      n, LooseLeaderElection::State{true, 1});
  pp::Population<LooseLeaderElection> pop(std::move(config));
  pp::Simulator<LooseLeaderElection> sim(protocol, std::move(pop), 19);
  const auto res = sim.run_until(
      [&](const pp::Population<LooseLeaderElection>& c, std::uint64_t) {
        return protocol.leader_count(c.states()) == 1;
      },
      4000ull * n);
  EXPECT_TRUE(res.converged);
}

}  // namespace
}  // namespace ssle::baselines
