// Checkpoint document codec + crash-safe resume bit-identity.
//
// The load-bearing claim (ISSUE 10 acceptance): checkpoint → restore into a
// fresh engine → continue, and the continuation is BIT-IDENTICAL to the
// saver's own continuation — registries counter-for-counter, RNG states
// word-for-word, for both the batched engine and sharded:T.  The document
// tests pin the strict parser (versioning, hex words, truncation) and the
// restore guards (engine/protocol/population mismatches).
#include "obs/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/measure.hpp"
#include "core/adversary.hpp"
#include "core/elect_leader.hpp"
#include "core/snapshot.hpp"

namespace ssle::obs {
namespace {

using analysis::Engine;
using analysis::EngineSpec;
using core::Params;

CheckpointDoc sample_doc() {
  CheckpointDoc doc;
  doc.engine = "batched";
  doc.protocol = "toy";
  doc.n = 7;
  doc.interactions = 123456789;
  // Words above int64 range: the hex codec must not degrade them.
  doc.rngs.push_back({0xdeadbeefcafef00dull, 1, 2, 0xffffffffffffffffull});
  doc.rngs.push_back({3, 4, 5, 6});
  doc.shards.push_back({{"a", 3}, {"b", 4}});
  auto cursor = util::Json::object();
  cursor.set("t", 17);
  doc.cursor = std::move(cursor);
  return doc;
}

TEST(CheckpointDoc, JsonRoundTrip) {
  const CheckpointDoc doc = sample_doc();
  const auto back = checkpoint_parse(checkpoint_dump(doc));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->engine, doc.engine);
  EXPECT_EQ(back->protocol, doc.protocol);
  EXPECT_EQ(back->n, doc.n);
  EXPECT_EQ(back->interactions, doc.interactions);
  EXPECT_EQ(back->rngs, doc.rngs);
  EXPECT_EQ(back->shards, doc.shards);
  ASSERT_TRUE(back->cursor.has_value());
}

TEST(CheckpointDoc, RejectsWrongKindAndVersion) {
  const CheckpointDoc doc = sample_doc();
  auto j = checkpoint_to_json(doc);
  j.set("kind", "something-else");
  EXPECT_FALSE(checkpoint_from_json(j).has_value());
  auto j2 = checkpoint_to_json(doc);
  j2.set("v", kCheckpointVersion + 1);
  EXPECT_FALSE(checkpoint_from_json(j2).has_value());
}

TEST(CheckpointDoc, RejectsTruncatedText) {
  const std::string text = checkpoint_dump(sample_doc());
  EXPECT_TRUE(checkpoint_parse(text).has_value());
  EXPECT_FALSE(checkpoint_parse(text.substr(0, text.size() / 2)).has_value());
  EXPECT_FALSE(checkpoint_parse("").has_value());
}

TEST(CheckpointDoc, HexCodecRoundTripsFullRange) {
  for (const std::uint64_t w :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{0x7fffffffffffffff},
        std::uint64_t{0x8000000000000000}, ~std::uint64_t{0}}) {
    const auto back = parse_hex_u64(hex_u64(w));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, w);
  }
  EXPECT_FALSE(parse_hex_u64("").has_value());
  EXPECT_FALSE(parse_hex_u64("12345").has_value());        // no 0x prefix
  EXPECT_FALSE(parse_hex_u64("0xnothex").has_value());
  EXPECT_FALSE(parse_hex_u64("0x12 4").has_value());
}

TEST(CheckpointDoc, RngStateCodecRejectsMalformedAndAllZero) {
  const std::array<std::uint64_t, 4> state{9, 8, 7, 0xabcdef0123456789ull};
  const auto back = rng_state_from_json(rng_state_to_json(state));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, state);
  // xoshiro's all-zero fixed point must never restore.
  EXPECT_FALSE(
      rng_state_from_json(rng_state_to_json({0, 0, 0, 0})).has_value());
  auto three = util::Json::array();
  three.push(hex_u64(1));
  three.push(hex_u64(2));
  three.push(hex_u64(3));
  EXPECT_FALSE(rng_state_from_json(three).has_value());
}

// --- engine-level restore guards ------------------------------------------

using Batched = pp::BatchedSimulator<core::ElectLeader>;
using Sharded = pp::ShardedSimulator<core::ElectLeader>;

Batched::Config safe_config(const Params& p) {
  return Batched::Config(core::make_safe_config(p));
}

TEST(CheckpointRestore, GuardsRejectMismatchedDocuments) {
  const Params p = Params::make(16, 8);
  const core::ElectLeader protocol(p);
  Batched sim(protocol, safe_config(p), 42);
  sim.step(500);
  CheckpointDoc doc =
      make_checkpoint(sim, "elect_leader", core::snapshot_write_agent);

  const auto fresh = [&] {
    return Batched(protocol, Batched::Config(std::vector<core::Agent>{}), 1);
  };
  {
    Batched r = fresh();
    EXPECT_TRUE(
        restore_checkpoint(r, doc, "elect_leader", core::snapshot_read_agent));
  }
  {  // protocol label mismatch
    Batched r = fresh();
    EXPECT_FALSE(
        restore_checkpoint(r, doc, "other_protocol", core::snapshot_read_agent));
  }
  {  // engine kind mismatch
    CheckpointDoc bad = doc;
    bad.engine = "sharded:2";
    Batched r = fresh();
    EXPECT_FALSE(
        restore_checkpoint(r, bad, "elect_leader", core::snapshot_read_agent));
  }
  {  // population total inconsistent with the shard lists
    CheckpointDoc bad = doc;
    bad.n += 1;
    Batched r = fresh();
    EXPECT_FALSE(
        restore_checkpoint(r, bad, "elect_leader", core::snapshot_read_agent));
  }
  {  // zero-count registry entry
    CheckpointDoc bad = doc;
    bad.shards[0][0].second = 0;
    Batched r = fresh();
    EXPECT_FALSE(
        restore_checkpoint(r, bad, "elect_leader", core::snapshot_read_agent));
  }
  {  // undecodable state stanza
    CheckpointDoc bad = doc;
    bad.shards[0][0].first = "not an agent stanza";
    Batched r = fresh();
    EXPECT_FALSE(
        restore_checkpoint(r, bad, "elect_leader", core::snapshot_read_agent));
  }
}

// --- bit-identical continuation -------------------------------------------

std::string tmp_path(const char* name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "ckpt_" + info->name() + "_" + name + ".json";
}

TEST(CheckpointRestore, BatchedContinuationIsBitIdentical) {
  const Params p = Params::make(64, 8);
  const core::ElectLeader protocol(p);
  Batched saver(protocol, safe_config(p), 7);
  saver.step(2500);

  const std::string path = tmp_path("batched");
  CheckpointDoc doc =
      make_checkpoint(saver, "elect_leader", core::snapshot_write_agent);
  ASSERT_TRUE(checkpoint_save(path, doc));
  const auto loaded = checkpoint_load(path);
  ASSERT_TRUE(loaded.has_value());

  Batched resumer(protocol, Batched::Config(std::vector<core::Agent>{}), 999);
  ASSERT_TRUE(restore_checkpoint(resumer, *loaded, "elect_leader",
                                 core::snapshot_read_agent));
  EXPECT_EQ(resumer.interactions(), saver.interactions());

  // Saver (continuing past its own checkpoint) and resumer must now follow
  // literally the same trajectory: compare full re-serializations — the
  // registry counter-for-counter, every RNG word, the interaction count.
  for (int leg = 0; leg < 4; ++leg) {
    saver.step(1000);
    resumer.step(1000);
    EXPECT_EQ(
        checkpoint_dump(make_checkpoint(saver, "elect_leader",
                                        core::snapshot_write_agent)),
        checkpoint_dump(make_checkpoint(resumer, "elect_leader",
                                        core::snapshot_write_agent)))
        << "diverged on leg " << leg;
  }
  std::remove(path.c_str());
}

TEST(CheckpointRestore, ShardedContinuationIsBitIdentical) {
  const Params p = Params::make(64, 8);
  const core::ElectLeader protocol(p);
  Sharded saver(protocol, safe_config(p), 7, /*shard_count=*/2);
  saver.step(2500);

  const std::string path = tmp_path("sharded2");
  CheckpointDoc doc =
      make_checkpoint(saver, "elect_leader", core::snapshot_write_agent);
  EXPECT_EQ(doc.engine, "sharded:2");
  EXPECT_EQ(doc.shards.size(), 2u);
  ASSERT_TRUE(checkpoint_save(path, doc));
  const auto loaded = checkpoint_load(path);
  ASSERT_TRUE(loaded.has_value());

  Sharded resumer(protocol, Sharded::Config(std::vector<core::Agent>{}), 999,
                  /*shard_count=*/2);
  ASSERT_TRUE(restore_checkpoint(resumer, *loaded, "elect_leader",
                                 core::snapshot_read_agent));
  EXPECT_EQ(resumer.interactions(), saver.interactions());

  for (int leg = 0; leg < 4; ++leg) {
    saver.step(1000);
    resumer.step(1000);
    EXPECT_EQ(
        checkpoint_dump(make_checkpoint(saver, "elect_leader",
                                        core::snapshot_write_agent)),
        checkpoint_dump(make_checkpoint(resumer, "elect_leader",
                                        core::snapshot_write_agent)))
        << "diverged on leg " << leg;
  }
  std::remove(path.c_str());
}

// --- the stabilize() ProbeOptions plumbing --------------------------------

// An interrupted stabilize run (budget exhausted mid-flight, checkpoint on
// disk) re-invoked with the full budget must land exactly where a single
// uninterrupted checkpointed run lands.
void stabilize_resume_case(EngineSpec engine, const char* tag) {
  const Params p = Params::make(64, 8);
  const std::uint64_t budget = analysis::default_budget(p);
  const std::uint64_t seed = 31;

  analysis::ProbeOptions full_probes;
  full_probes.probe_every = 100;
  full_probes.checkpoint_every = 1000;
  full_probes.checkpoint_path = tmp_path((std::string("full_") + tag).c_str());
  std::remove(full_probes.checkpoint_path.c_str());
  const auto full = analysis::stabilize(
      engine, analysis::StartKind::kClean, p, core::Corruption::kNone, seed,
      budget, full_probes);
  ASSERT_TRUE(full.converged);
  ASSERT_GT(full.interactions, 2000u) << "case too easy to exercise resume";

  analysis::ProbeOptions cut_probes = full_probes;
  cut_probes.checkpoint_path = tmp_path((std::string("cut_") + tag).c_str());
  std::remove(cut_probes.checkpoint_path.c_str());
  const auto cut = analysis::stabilize(
      engine, analysis::StartKind::kClean, p, core::Corruption::kNone, seed,
      full.interactions / 2, cut_probes);
  ASSERT_FALSE(cut.converged);
  const auto resumed = analysis::stabilize(
      engine, analysis::StartKind::kClean, p, core::Corruption::kNone, seed,
      budget, cut_probes);
  EXPECT_TRUE(resumed.converged);
  EXPECT_EQ(resumed.interactions, full.interactions);
  EXPECT_EQ(resumed.leaders, full.leaders);
  std::remove(full_probes.checkpoint_path.c_str());
  std::remove(cut_probes.checkpoint_path.c_str());
}

TEST(CheckpointStabilize, BatchedResumeLandsIdentically) {
  stabilize_resume_case(Engine::kBatched, "batched");
}

TEST(CheckpointStabilize, ShardedResumeLandsIdentically) {
  stabilize_resume_case(EngineSpec(Engine::kSharded, 2), "sharded");
}

}  // namespace
}  // namespace ssle::obs
