// End-to-end self-stabilization tests: ElectLeader_r must recover from
// every adversarial corruption class (the defining property, §1.1), with
// class-specific expectations:
//   * corrupt messages + correct ranking → recovery must PRESERVE the
//     ranking (soft reset only, §3.2);
//   * duplicate ranks / no leader → full reset path, new correct ranking.
#include <gtest/gtest.h>

#include <tuple>

#include "analysis/measure.hpp"
#include "core/adversary.hpp"
#include "core/elect_leader.hpp"
#include "core/safety.hpp"
#include "core/stable_verify.hpp"
#include "pp/simulator.hpp"

namespace ssle::core {
namespace {

class Recovery
    : public ::testing::TestWithParam<std::tuple<Corruption, std::uint32_t>> {};

TEST_P(Recovery, ReachesSafeConfiguration) {
  const auto [corruption, n] = GetParam();
  const Params p = Params::make(n, std::max(1u, n / 4));
  const auto res = analysis::stabilize(
      analysis::Engine::kNaive, analysis::StartKind::kAdversarial, p,
      corruption, 123, 4 * analysis::default_budget(p));
  ASSERT_TRUE(res.converged)
      << corruption_name(corruption) << " n=" << n
      << " interactions=" << res.interactions;
  EXPECT_EQ(res.leaders, 1u) << corruption_name(corruption);
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, Recovery,
    ::testing::Combine(::testing::ValuesIn(all_corruptions()),
                       ::testing::Values(16u, 32u)),
    [](const ::testing::TestParamInfo<Recovery::ParamType>& info) {
      return corruption_name(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Recovery, CorruptMessagesPreservesRanking) {
  // §3.2: "if the ranking is correct after a successful soft reset no
  // further inconsistencies will be encountered ... and the correct ranking
  // will be maintained forever".  The agents' ranks before and after
  // recovery must be identical.
  const Params p = Params::make(32, 8);
  util::Rng gen(55);
  auto config = make_adversarial_config(p, Corruption::kCorruptMessages, gen);
  std::vector<std::uint32_t> ranks_before;
  for (const Agent& a : config) ranks_before.push_back(a.rank);

  ElectLeader protocol(p);
  pp::Population<ElectLeader> pop(std::move(config));
  pp::Simulator<ElectLeader> sim(protocol, std::move(pop), 56);
  const auto run = sim.run_until(
      [&](const pp::Population<ElectLeader>& c, std::uint64_t) {
        return is_safe_configuration(p, c.states());
      },
      4 * analysis::default_budget(p), p.n);
  ASSERT_TRUE(run.converged);
  for (std::uint32_t i = 0; i < p.n; ++i) {
    EXPECT_EQ(sim.population()[i].rank, ranks_before[i]) << "agent " << i;
  }
}

TEST(Recovery, CorruptMessagesNeverHardResets) {
  // With probation timers at 0 (long-stable population), message corruption
  // must be repaired by soft resets only: no agent ever becomes a resetter.
  const Params p = Params::make(32, 8);
  util::Rng gen(77);
  auto config = make_adversarial_config(p, Corruption::kCorruptMessages, gen);
  ElectLeader protocol(p);
  pp::Population<ElectLeader> pop(std::move(config));
  pp::Simulator<ElectLeader> sim(protocol, std::move(pop), 78);
  bool saw_resetter = false;
  for (int round = 0; round < 4000; ++round) {
    sim.step(p.n);
    for (std::uint32_t i = 0; i < p.n; ++i) {
      saw_resetter |= sim.population()[i].role == Role::kResetting;
    }
    if (is_safe_configuration(p, sim.population().states())) break;
  }
  EXPECT_FALSE(saw_resetter);
  EXPECT_TRUE(is_safe_configuration(p, sim.population().states()));
}

TEST(Recovery, DuplicateRanksForcesNewRanking) {
  const Params p = Params::make(24, 6);
  util::Rng gen(91);
  auto config = make_adversarial_config(p, Corruption::kDuplicateRanks, gen);
  ASSERT_FALSE(ranking_correct(p, config));
  const auto res = analysis::stabilize_from(p, std::move(config), 92,
                                            4 * analysis::default_budget(p));
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.leaders, 1u);
}

TEST(Recovery, TwoLeadersResolvedToOne) {
  const Params p = Params::make(24, 6);
  auto config = make_safe_config(p);
  // Both agents claim rank 1 (two leaders) — the canonical SSLE failure.
  config[5].rank = 1;
  config[5].sv = sv_initial_state(p, 1);
  config[5].sv.probation_timer = 0;
  ASSERT_EQ(leader_count(config), 2u);
  const auto res = analysis::stabilize_from(p, std::move(config), 13,
                                            4 * analysis::default_budget(p));
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.leaders, 1u);
}

TEST(Recovery, RandomStatesManySeeds) {
  // Fuzz: unstructured random configurations, several seeds, must always
  // recover (probabilistic stabilization has probability 1).
  const Params p = Params::make(16, 8);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto res = analysis::stabilize(
        analysis::Engine::kNaive, analysis::StartKind::kAdversarial, p,
        Corruption::kRandomStates, seed, 6 * analysis::default_budget(p));
    ASSERT_TRUE(res.converged) << "seed=" << seed;
    EXPECT_EQ(res.leaders, 1u) << "seed=" << seed;
  }
}

TEST(Recovery, MidRunCorruptionHealed) {
  // Stabilize cleanly, then corrupt HALF the population in place and let
  // the protocol re-stabilize — the "transient fault" scenario that
  // motivates self-stabilization.
  const Params p = Params::make(32, 16);
  ElectLeader protocol(p);
  pp::Simulator<ElectLeader> sim(protocol, 200);
  auto safe = [&](const pp::Population<ElectLeader>& c, std::uint64_t) {
    return is_safe_configuration(p, c.states());
  };
  ASSERT_TRUE(sim.run_until(safe, analysis::default_budget(p), p.n).converged);

  util::Rng corruptor(201);
  for (std::uint32_t i = 0; i < p.n / 2; ++i) {
    sim.population()[i] = random_agent(p, corruptor);
  }
  const auto rerun =
      sim.run_until(safe, 6 * analysis::default_budget(p), p.n);
  ASSERT_TRUE(rerun.converged);
  EXPECT_EQ(leader_count(sim.population().states()), 1u);
}

}  // namespace
}  // namespace ssle::core
