// ShardedSimulator: exactness, determinism and accounting of the sharded
// single-run engine (pp/sharded_simulator.hpp).
//
// The engine claims to sample the SAME counts Markov chain as every other
// engine for any shard count T, with per-seed determinism on any hardware,
// and to be bit-identical to BatchedSimulator at T = 1.  Those claims are
// pinned here the same way the batched engine's were: tiny-n empirical laws
// against the naive engine (total-variation distance), exact-equality runs
// for determinism, and counter reconciliation for the metrics contract
//   intra + cross + collisions == interactions,
//   intra == Σ_j shard_metrics(j).interactions.
#include "pp/sharded_simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "analysis/measure.hpp"
#include "baselines/loose_leader.hpp"
#include "core/elect_leader.hpp"
#include "core/params.hpp"
#include "pp/batched_simulator.hpp"
#include "pp/epidemic.hpp"
#include "pp/simulator.hpp"

namespace ssle::pp {
namespace {

/// Exact multiset equality of two counts configurations (both directions,
/// so a class present in only one side is caught either way).
template <typename C>
void expect_same_configuration(const C& a, const C& b) {
  ASSERT_EQ(a.population_size(), b.population_size());
  EXPECT_EQ(a.num_live_states(), b.num_live_states());
  a.for_each([&](const auto& s, std::uint64_t c) {
    EXPECT_EQ(b.count_of(s), c);
  });
  b.for_each([&](const auto& s, std::uint64_t c) {
    EXPECT_EQ(a.count_of(s), c);
  });
}

TEST(ShardedSimulator, PartitionMergesBackToTheInitialConfiguration) {
  Epidemic proto{17};  // odd n: the per-class remainder rotation is exercised
  ShardedSimulator<Epidemic> sim(proto, 1, /*shard_count=*/3);
  EXPECT_EQ(sim.shard_count(), 3u);
  const auto& merged = sim.config();
  EXPECT_EQ(merged.population_size(), 17u);
  EXPECT_EQ(merged.count_of(1), 1u);
  EXPECT_EQ(merged.count_of(0), 16u);
  EXPECT_EQ(sim.interactions(), 0u);
}

TEST(ShardedSimulator, StepCountsInteractionsExactlyAndConservesAgents) {
  Epidemic proto{64};
  ShardedSimulator<Epidemic> sim(proto, 1, /*shard_count=*/4);
  sim.step(100);
  EXPECT_EQ(sim.interactions(), 100u);
  sim.step();
  EXPECT_EQ(sim.interactions(), 101u);
  EXPECT_EQ(sim.config().population_size(), 64u);
}

TEST(ShardedSimulator, EpidemicEventuallyInfectsAll) {
  Epidemic proto{64};
  ShardedSimulator<Epidemic> sim(proto, 2, /*shard_count=*/4);
  const auto result = sim.run_until(
      [](const CountsConfiguration<Epidemic>& c, std::uint64_t) {
        return c.count_of(1) == c.population_size();
      },
      1u << 20);
  EXPECT_TRUE(result.converged);
  // Same w.h.p. bound as the naive/batched engine tests (Lemma A.2).
  EXPECT_LT(result.interactions, 4000u);
  EXPECT_GE(result.interactions, 64u);
}

// ---------------------------------------------------------------------------
// T = 1 is the batched engine, bit for bit.
// ---------------------------------------------------------------------------

TEST(ShardedSimulator, OneShardIsBitIdenticalToBatchedOnEpidemic) {
  Epidemic proto{256};
  ShardedSimulator<Epidemic> sharded(proto, 9, /*shard_count=*/1);
  BatchedSimulator<Epidemic> batched(proto, 9);
  sharded.step(5000);
  batched.step(5000);
  EXPECT_EQ(sharded.config().count_of(1), batched.config().count_of(1));
  EXPECT_EQ(sharded.config().count_of(0), batched.config().count_of(0));
  // The whole counter surface agrees too — same blocks, same collisions,
  // same Fenwick traffic — which only holds if the streams are identical.
  const auto ms = sharded.metrics();
  const auto mb = batched.metrics();
  EXPECT_STREQ(ms.engine, "sharded");
  EXPECT_EQ(ms.shards, 1u);
  EXPECT_EQ(ms.blocks_dense, mb.blocks_dense);
  EXPECT_EQ(ms.blocks_fenwick, mb.blocks_fenwick);
  EXPECT_EQ(ms.blocks_flat, mb.blocks_flat);
  EXPECT_EQ(ms.collision_resolutions, mb.collision_resolutions);
  EXPECT_EQ(ms.fenwick_samples, mb.fenwick_samples);
}

TEST(ShardedSimulator, OneShardIsBitIdenticalToBatchedOnElectLeader) {
  const core::Params params = core::Params::make(16, 4);
  core::ElectLeader protocol(params);
  ShardedSimulator<core::ElectLeader> sharded(protocol, 5, /*shard_count=*/1);
  BatchedSimulator<core::ElectLeader> batched(protocol, 5);
  sharded.step(2000);
  batched.step(2000);
  const auto& a = sharded.config();
  const auto& b = batched.config();
  expect_same_configuration(a, b);
}

// ---------------------------------------------------------------------------
// Per-seed determinism for every T: same seed → same trajectory, and the
// metrics snapshot (which exposes per-shard scheduling) agrees too.
// ---------------------------------------------------------------------------

TEST(ShardedSimulator, DeterministicGivenSeedForEveryShardCount) {
  Epidemic proto{257};  // prime n: shards of unequal size
  for (const std::size_t T : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    ShardedSimulator<Epidemic> a(proto, 9, T);
    ShardedSimulator<Epidemic> b(proto, 9, T);
    a.step(4000);
    b.step(4000);
    EXPECT_EQ(a.config().count_of(1), b.config().count_of(1)) << "T=" << T;
    EXPECT_EQ(a.config().count_of(0), b.config().count_of(0)) << "T=" << T;
    const auto ma = a.metrics();
    const auto mb = b.metrics();
    EXPECT_EQ(ma.collision_resolutions, mb.collision_resolutions) << "T=" << T;
    EXPECT_EQ(ma.cross_shard_interactions, mb.cross_shard_interactions)
        << "T=" << T;
    EXPECT_EQ(ma.intra_shard_interactions, mb.intra_shard_interactions)
        << "T=" << T;
  }
}

TEST(ShardedSimulator, DeterministicGivenSeedOnARandomizedProtocol) {
  const core::Params params = core::Params::make(32, 4);
  core::ElectLeader protocol(params);
  ShardedSimulator<core::ElectLeader> a(protocol, 13, /*shard_count=*/4);
  ShardedSimulator<core::ElectLeader> b(protocol, 13, /*shard_count=*/4);
  a.step(3000);
  b.step(3000);
  const auto& ca = a.config();
  const auto& cb = b.config();
  expect_same_configuration(ca, cb);
}

// ---------------------------------------------------------------------------
// Metrics reconciliation (the engine-level invariants of obs/metrics.hpp).
// ---------------------------------------------------------------------------

TEST(ShardedSimulator, MetricsReconcileAcrossShards) {
  const core::Params params = core::Params::make(32, 4);
  core::ElectLeader protocol(params);
  ShardedSimulator<core::ElectLeader> sim(protocol, 7, /*shard_count=*/4);
  sim.step(20000);
  const auto m = sim.metrics();
  EXPECT_STREQ(m.engine, "sharded");
  EXPECT_EQ(m.shards, 4u);
  EXPECT_EQ(m.interactions, 20000u);
  EXPECT_EQ(m.intra_shard_interactions + m.cross_shard_interactions +
                m.collision_resolutions,
            m.interactions);
  std::uint64_t intra = 0;
  for (std::size_t j = 0; j < sim.shard_count(); ++j) {
    intra += sim.shard_metrics(j).interactions;
  }
  EXPECT_EQ(intra, m.intra_shard_interactions);
  // Under uniform pairing a fraction 1 - 1/T of interactions cross shards:
  // the majority at T = 4 (this is why phases B/C are parallel).
  EXPECT_GT(m.cross_shard_interactions, m.intra_shard_interactions);
  EXPECT_GT(m.blocks_fenwick + m.blocks_flat, 0u);
}

// ---------------------------------------------------------------------------
// Flat vs Fenwick shard sampling: stream-identical by construction.
// ---------------------------------------------------------------------------

TEST(ShardedSimulator, ForcedFlatAndForcedFenwickAreBitIdentical) {
  const core::Params params = core::Params::make(24, 4);
  core::ElectLeader protocol(params);
  ShardedSimulator<core::ElectLeader> flat(protocol, 11, /*shard_count=*/3,
                                           BlockSampling::kFlat);
  ShardedSimulator<core::ElectLeader> fenwick(protocol, 11, /*shard_count=*/3,
                                              BlockSampling::kFenwick);
  flat.step(3000);
  fenwick.step(3000);
  const auto& cf = flat.config();
  const auto& cw = fenwick.config();
  expect_same_configuration(cf, cw);
  EXPECT_GT(flat.metrics().blocks_flat, 0u);
  EXPECT_EQ(flat.metrics().blocks_fenwick, 0u);
  EXPECT_GT(fenwick.metrics().blocks_fenwick, 0u);
  EXPECT_EQ(fenwick.metrics().blocks_flat, 0u);
}

// ---------------------------------------------------------------------------
// Statistical equivalence with the naive engine at tiny n, where the
// collision path and the cross-shard machinery are both hammered.
// ---------------------------------------------------------------------------

std::uint64_t epidemic_time_naive(std::uint32_t n, std::uint64_t seed) {
  Epidemic proto{n};
  Simulator<Epidemic> sim(proto, seed);
  const auto r = sim.run_until(
      [](const Population<Epidemic>& pop, std::uint64_t) {
        for (std::uint32_t i = 0; i < pop.size(); ++i) {
          if (pop[i] == 0) return false;
        }
        return true;
      },
      1u << 22, /*probe_every=*/1);
  EXPECT_TRUE(r.converged);
  return r.interactions;
}

std::uint64_t epidemic_time_sharded(std::uint32_t n, std::uint64_t seed,
                                    std::size_t shards) {
  Epidemic proto{n};
  ShardedSimulator<Epidemic> sim(proto, seed, shards);
  const auto r = sim.run_until(
      [](const CountsConfiguration<Epidemic>& c, std::uint64_t) {
        return c.count_of(1) == c.population_size();
      },
      1u << 22, /*probe_every=*/1);
  EXPECT_TRUE(r.converged);
  return r.interactions;
}

double tv_distance(const std::map<std::uint64_t, int>& a,
                   const std::map<std::uint64_t, int>& b, int trials) {
  std::map<std::uint64_t, double> diff;
  for (const auto& [k, c] : a) diff[k] += static_cast<double>(c) / trials;
  for (const auto& [k, c] : b) diff[k] -= static_cast<double>(c) / trials;
  double tv = 0.0;
  for (const auto& [k, d] : diff) tv += std::abs(d);
  return tv / 2.0;
}

TEST(ShardedEquivalence, TinyEpidemicLawMatchesNaive) {
  // n = 4, T = 2: every block is a handful of slots, collisions are the
  // common case, and half of all pairs cross the shard boundary — the
  // whole phase machinery in miniature, 3000 times.
  const std::uint32_t n = 4;
  const int trials = 3000;
  std::map<std::uint64_t, int> pmf_naive, pmf_sharded;
  for (int t = 0; t < trials; ++t) {
    ++pmf_naive[epidemic_time_naive(n, 20000 + t)];
    ++pmf_sharded[epidemic_time_sharded(n, 70000 + t, 2)];
  }
  const double tv = tv_distance(pmf_naive, pmf_sharded, trials);
  EXPECT_LT(tv, 0.1) << "total variation distance " << tv;
}

TEST(ShardedEquivalence, TinyEpidemicLawMatchesNaiveAtThreeShards) {
  // T = 3 with n = 5: shards of unequal size (2/2/1), so the label walk's
  // without-replacement arithmetic is exercised off the balanced case.
  const std::uint32_t n = 5;
  const int trials = 3000;
  std::map<std::uint64_t, int> pmf_naive, pmf_sharded;
  for (int t = 0; t < trials; ++t) {
    ++pmf_naive[epidemic_time_naive(n, 30000 + t)];
    ++pmf_sharded[epidemic_time_sharded(n, 80000 + t, 3)];
  }
  const double tv = tv_distance(pmf_naive, pmf_sharded, trials);
  EXPECT_LT(tv, 0.1) << "total variation distance " << tv;
}

std::uint32_t loose_leaders_naive(std::uint32_t n, std::uint64_t seed,
                                  std::uint64_t horizon) {
  baselines::LooseLeaderElection proto(n);
  Simulator<baselines::LooseLeaderElection> sim(proto, seed);
  sim.step(horizon);
  std::uint32_t leaders = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    leaders += sim.population()[i].leader ? 1 : 0;
  }
  return leaders;
}

std::uint32_t loose_leaders_sharded(std::uint32_t n, std::uint64_t seed,
                                    std::uint64_t horizon,
                                    std::size_t shards) {
  baselines::LooseLeaderElection proto(n);
  ShardedSimulator<baselines::LooseLeaderElection> sim(proto, seed, shards);
  sim.step(horizon);
  return static_cast<std::uint32_t>(
      sim.config().count_if(baselines::LooseLeaderElection::is_leader));
}

TEST(ShardedEquivalence, LooseLeaderCountLawMatchesNaive) {
  // LooseLeaderElection from the all-zero start: timers hit 0, agents
  // promote, duplicate leaders fight.  The leader count at a fixed horizon
  // is a non-trivial discrete law (1, 2, 3... leaders) that a biased block
  // or collision path would shift.  Deterministic δ, so this also covers
  // the per-shard δ-cache against the naive engine.
  const std::uint32_t n = 4;
  const std::uint64_t horizon = 64;
  const int trials = 3000;
  std::map<std::uint64_t, int> pmf_naive, pmf_sharded;
  for (int t = 0; t < trials; ++t) {
    ++pmf_naive[loose_leaders_naive(n, 40000 + t, horizon)];
    ++pmf_sharded[loose_leaders_sharded(n, 90000 + t, horizon, 2)];
  }
  const double tv = tv_distance(pmf_naive, pmf_sharded, trials);
  EXPECT_LT(tv, 0.1) << "total variation distance " << tv;
}

// ---------------------------------------------------------------------------
// Edge cases.
// ---------------------------------------------------------------------------

TEST(ShardedEdge, MoreShardsThanAgentsStillRunsExactly) {
  Epidemic proto{4};
  ShardedSimulator<Epidemic> sim(proto, 3, /*shard_count=*/8);
  sim.step(500);
  EXPECT_EQ(sim.interactions(), 500u);
  EXPECT_EQ(sim.config().population_size(), 4u);
  EXPECT_EQ(sim.config().count_of(1) + sim.config().count_of(0), 4u);
}

TEST(ShardedEdge, SingleAgentNeverInteractsButCounts) {
  Epidemic proto{1};
  ShardedSimulator<Epidemic> sim(proto, 3, /*shard_count=*/4);
  sim.step(100);
  EXPECT_EQ(sim.interactions(), 100u);
  EXPECT_EQ(sim.config().count_of(1), 1u);
}

TEST(ShardedEdge, ZeroShardCountPicksTheDefault) {
  Epidemic proto{64};
  ShardedSimulator<Epidemic> sim(proto, 3, /*shard_count=*/0);
  EXPECT_GE(sim.shard_count(), 1u);
  EXPECT_LE(sim.shard_count(), 8u);
  EXPECT_EQ(sim.shard_count(), default_shard_count());
  sim.step(200);
  EXPECT_EQ(sim.config().population_size(), 64u);
}

// ---------------------------------------------------------------------------
// analysis dispatch: --engine=sharded[:T] end to end.
// ---------------------------------------------------------------------------

TEST(ShardedDispatch, EngineSpecParsesShardCounts) {
  const auto plain = analysis::engine_from_string("sharded");
  EXPECT_EQ(plain.kind, analysis::Engine::kSharded);
  EXPECT_EQ(plain.shards, 0u);
  const auto four = analysis::engine_from_string("sharded:4");
  EXPECT_EQ(four.kind, analysis::Engine::kSharded);
  EXPECT_EQ(four.shards, 4u);
  EXPECT_STREQ(analysis::engine_name(analysis::Engine::kSharded), "sharded");
}

TEST(ShardedDispatch, StabilizeElectsOneLeader) {
  const core::Params params = core::Params::make(16, 4);
  const auto res = analysis::stabilize(
      analysis::EngineSpec(analysis::Engine::kSharded, 2), params, 21,
      analysis::default_budget(params));
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.leaders, 1u);
  EXPECT_STREQ(res.metrics.engine, "sharded");
  EXPECT_EQ(res.metrics.shards, 2u);
}

TEST(ShardedDispatch, AdversarialStartRecovers) {
  const core::Params params = core::Params::make(16, 4);
  const auto res = analysis::stabilize(
      analysis::EngineSpec(analysis::Engine::kSharded, 2),
      analysis::StartKind::kAdversarial, params,
      core::Corruption::kRandomStates, 23, analysis::default_budget(params));
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.leaders, 1u);
}

TEST(ShardedDispatch, EpidemicConvergenceRuns) {
  const auto r = analysis::epidemic_convergence(
      analysis::EngineSpec(analysis::Engine::kSharded, 2), 64, 31);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.interactions, 4000u);
}

TEST(ShardedDispatch, DerandomizedStabilizes) {
  const core::Params params = core::Params::make(8, 4);
  const auto res = analysis::stabilize_derandomized(
      analysis::EngineSpec(analysis::Engine::kSharded, 2), params, 3,
      analysis::default_budget(params));
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.leaders, 1u);
}

}  // namespace
}  // namespace ssle::pp
