// util::ThreadPool: the shared worker pool behind analysis::parallel_sweep
// and the sharded engine's per-phase fan-out.  Pins the contract the header
// documents: submit/wait_idle barrier semantics, run_indexed covering every
// index exactly once (with the calling thread participating), inline
// degradation at 0 threads, and first-exception capture + rethrow.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ssle::util {
namespace {

TEST(ThreadPool, SubmitRunsEveryTaskBeforeWaitIdleReturns) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> done{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, ZeroThreadsDegradesToInlineExecution) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.submit([&] { ran_on = std::this_thread::get_id(); });
  // Inline execution: the task already ran, on this thread.
  EXPECT_EQ(ran_on, caller);
  pool.wait_idle();  // still a valid (trivial) barrier
}

TEST(ThreadPool, RunIndexedCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  const std::size_t count = 1000;
  std::vector<std::atomic<int>> hits(count);
  pool.run_indexed(count, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, RunIndexedUsesTheCallingThreadToo) {
  // With 0 workers the calling thread is the only executor, so run_indexed
  // must still complete — the sharded engine's 1-core fallback.
  ThreadPool pool(0);
  std::vector<int> hits(64, 0);
  const auto caller = std::this_thread::get_id();
  pool.run_indexed(hits.size(), [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    hits[i] += 1;
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, WaitIdleRethrowsTheFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed by the rethrow: the pool remains usable.
  std::atomic<int> done{0};
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPool, RunIndexedRethrowsABodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run_indexed(100,
                                [](std::size_t i) {
                                  if (i == 17) {
                                    throw std::runtime_error("body failed");
                                  }
                                }),
               std::runtime_error);
  // Usable afterwards, same as wait_idle.
  std::atomic<int> done{0};
  pool.run_indexed(8, [&](std::size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, RunIndexedZeroCountIsANoOp) {
  ThreadPool pool(2);
  pool.run_indexed(0, [](std::size_t) { FAIL() << "body ran for count 0"; });
}

}  // namespace
}  // namespace ssle::util
