#include "core/elect_leader.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "analysis/measure.hpp"
#include "core/adversary.hpp"
#include "core/propagate_reset.hpp"
#include "core/safety.hpp"
#include "core/stable_verify.hpp"
#include "pp/simulator.hpp"

namespace ssle::core {
namespace {

TEST(ElectLeader, InitialStateIsCleanRanker) {
  const Params p = Params::make(16, 4);
  ElectLeader protocol(p);
  const Agent a = protocol.initial_state(0);
  EXPECT_EQ(a.role, Role::kRanking);
  EXPECT_EQ(a.countdown, p.countdown_max);
  EXPECT_EQ(a.ar.type, ArType::kLeaderElection);
}

TEST(ElectLeader, CountdownForcesVerifier) {
  const Params p = Params::make(16, 4);
  ElectLeader protocol(p);
  Agent u = protocol.initial_state(0);
  Agent v = protocol.initial_state(1);
  // Give the stragglers distinct computed ranks so the immediate
  // StableVerify interaction does not (correctly!) flag a collision.
  u.ar.type = ArType::kRanked;
  u.ar.rank = 2;
  v.ar.type = ArType::kRanked;
  v.ar.rank = 9;
  u.countdown = 1;
  v.countdown = 1;
  util::Rng rng(1);
  protocol.interact(u, v, rng);
  EXPECT_EQ(u.role, Role::kVerifying);
  EXPECT_EQ(v.role, Role::kVerifying);
  EXPECT_EQ(u.rank, 2u);
  EXPECT_EQ(v.rank, 9u);
}

TEST(ElectLeader, SharedDefaultRankStragglersCollideAndReset) {
  // Two stragglers forced out of Ranking both carry the default rank 1;
  // they are in the same group, DetectCollision raises ⊤ immediately, and
  // (being on fresh probation) they hard-reset — the paper's intended
  // recovery path for failed rankings.
  const Params p = Params::make(16, 4);
  ElectLeader protocol(p);
  Agent u = protocol.initial_state(0);
  Agent v = protocol.initial_state(1);
  u.countdown = 1;
  v.countdown = 1;
  util::Rng rng(1);
  protocol.interact(u, v, rng);
  EXPECT_TRUE(u.role == Role::kResetting || v.role == Role::kResetting);
}

TEST(ElectLeader, VerifierConvertsRankerByEpidemic) {
  const Params p = Params::make(16, 4);
  ElectLeader protocol(p);
  Agent u = protocol.initial_state(0);
  Agent v;
  v.role = Role::kVerifying;
  v.rank = 3;
  v.sv = sv_initial_state(p, 3);
  util::Rng rng(2);
  protocol.interact(u, v, rng);
  EXPECT_EQ(u.role, Role::kVerifying);
}

TEST(ElectLeader, RankClampedIntoStateSpace) {
  const Params p = Params::make(16, 4);
  ElectLeader protocol(p);
  Agent u = protocol.initial_state(0);
  u.ar.type = ArType::kRanked;
  u.ar.rank = 4000;  // out of [n] — only possible adversarially
  u.countdown = 0;
  Agent v = protocol.initial_state(1);
  util::Rng rng(3);
  protocol.interact(u, v, rng);
  EXPECT_EQ(u.role, Role::kVerifying);
  EXPECT_LE(u.rank, p.n);
  EXPECT_GE(u.rank, 1u);
}

TEST(ElectLeader, IsLeaderRequiresVerifyingRankOne) {
  Agent a;
  a.role = Role::kVerifying;
  a.rank = 1;
  EXPECT_TRUE(ElectLeader::is_leader(a));
  a.rank = 2;
  EXPECT_FALSE(ElectLeader::is_leader(a));
  a.rank = 1;
  a.role = Role::kRanking;
  EXPECT_FALSE(ElectLeader::is_leader(a));
}

// --- Clean-start stabilization across the parameter space (Thm 1.1) --------

class CleanStart
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(CleanStart, StabilizesWithUniqueLeader) {
  const auto [n, r] = GetParam();
  const Params p = Params::make(n, r);
  const auto res =
      analysis::stabilize(analysis::Engine::kNaive, p, 42,
                          analysis::default_budget(p));
  ASSERT_TRUE(res.converged) << "n=" << n << " r=" << r;
  EXPECT_EQ(res.leaders, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CleanStart,
    ::testing::Values(std::tuple{8u, 1u}, std::tuple{8u, 2u},
                      std::tuple{8u, 4u}, std::tuple{16u, 1u},
                      std::tuple{16u, 4u}, std::tuple{16u, 8u},
                      std::tuple{24u, 5u}, std::tuple{32u, 4u},
                      std::tuple{32u, 16u}, std::tuple{48u, 16u},
                      std::tuple{64u, 8u}, std::tuple{64u, 32u}));

TEST(ElectLeader, LightMultiplicityStabilizes) {
  const Params p = Params::make(64, 16, MessageMultiplicity::kLight);
  const auto res = analysis::stabilize(analysis::Engine::kNaive, p, 7,
                                       analysis::default_budget(p));
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.leaders, 1u);
}

// --- Safety: once safe, stays safe (Lemma 6.1) ------------------------------

TEST(ElectLeader, SafeConfigurationIsClosedUnderInteractions) {
  const Params p = Params::make(24, 12);
  ElectLeader protocol(p);
  pp::Population<ElectLeader> pop(make_safe_config(p));
  pp::Simulator<ElectLeader> sim(protocol, std::move(pop), 11);
  for (int round = 0; round < 60; ++round) {
    sim.step(1000);
    ASSERT_TRUE(ranking_correct(p, sim.population().states()))
        << "round " << round;
    ASSERT_EQ(leader_count(sim.population().states()), 1u);
  }
  // The full safe predicate also keeps holding (messages stay consistent).
  EXPECT_TRUE(is_safe_configuration(p, sim.population().states()));
}

TEST(ElectLeader, StabilizationIsDeterministicPerSeed) {
  const Params p = Params::make(16, 8);
  const auto a = analysis::stabilize(analysis::Engine::kNaive, p, 5,
                                     analysis::default_budget(p));
  const auto b = analysis::stabilize(analysis::Engine::kNaive, p, 5,
                                     analysis::default_budget(p));
  EXPECT_EQ(a.interactions, b.interactions);
  EXPECT_EQ(a.converged, b.converged);
}

}  // namespace
}  // namespace ssle::core
