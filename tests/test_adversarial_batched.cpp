// Batched adversarial starts: the counts projection of every corruption
// class must recover like the naive engine does.
//
// analysis::stabilize(kBatched, kAdversarial, …) projects
// core::make_adversarial_config through CountsConfiguration and advances
// it with the batched engine; both engines draw the *same* start from the
// same substream, so for every core::Corruption kind the recovery-time
// distributions must agree (statistically — the engines consume scheduler
// randomness differently).  This is the adversarial counterpart of the
// clean-start equivalence suite in test_batched_simulator.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "analysis/measure.hpp"
#include "core/adversary.hpp"
#include "core/params.hpp"
#include "pp/counts.hpp"

namespace ssle::analysis {
namespace {

using core::Corruption;
using core::Params;

struct SampleStats {
  double mean = 0.0;
  double sd = 0.0;
};

SampleStats stats_of(const std::vector<double>& xs) {
  double sum = 0.0, sumsq = 0.0;
  for (const double x : xs) {
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  const double var = sumsq / static_cast<double>(xs.size()) - mean * mean;
  return {mean, std::sqrt(std::max(0.0, var))};
}

class AdversarialEquivalence : public ::testing::TestWithParam<Corruption> {};

TEST_P(AdversarialEquivalence, RecoveryTimesMatchNaive) {
  const Corruption corruption = GetParam();
  const Params p = Params::make(16, 4);
  const std::uint64_t budget = 20 * default_budget(p);
  const int trials = 16;

  std::vector<double> naive, batched;
  for (int t = 0; t < trials; ++t) {
    const auto rn = stabilize(Engine::kNaive, StartKind::kAdversarial, p,
                              corruption, 500 + t, budget);
    ASSERT_TRUE(rn.converged)
        << corruption_name(corruption) << " naive seed " << 500 + t;
    EXPECT_EQ(rn.leaders, 1u);
    naive.push_back(static_cast<double>(rn.interactions));

    const auto rb = stabilize(Engine::kBatched, StartKind::kAdversarial, p,
                              corruption, 7500 + t, budget);
    ASSERT_TRUE(rb.converged)
        << corruption_name(corruption) << " batched seed " << 7500 + t;
    EXPECT_EQ(rb.leaders, 1u);
    batched.push_back(static_cast<double>(rb.interactions));
  }

  const auto sn0 = stats_of(naive);
  const auto sb0 = stats_of(batched);
  if (sn0.mean == 0.0 && sb0.mean == 0.0) {
    // Both engines found every start already safe (kNone always; mild
    // classes like lost_messages can stay within C_safe at small n):
    // trivially equivalent, and kNone must land here by construction.
    return;
  }
  ASSERT_NE(corruption, Corruption::kNone);

  // Recovery time is heavy-tailed and 16 trials is modest, so the band is
  // wide; a biased projection or broken collision handling lands far
  // outside it (cf. the clean-start band in test_batched_simulator.cpp).
  const auto sn = stats_of(naive);
  const auto sb = stats_of(batched);
  EXPECT_GT(sb.mean, 0.3 * sn.mean)
      << corruption_name(corruption) << ": naive mean=" << sn.mean
      << " batched mean=" << sb.mean;
  EXPECT_LT(sb.mean, 3.0 * sn.mean)
      << corruption_name(corruption) << ": naive mean=" << sn.mean
      << " batched mean=" << sb.mean;
}

INSTANTIATE_TEST_SUITE_P(
    AllCorruptions, AdversarialEquivalence,
    ::testing::ValuesIn(core::all_corruptions()),
    [](const ::testing::TestParamInfo<Corruption>& info) {
      return core::corruption_name(info.param);
    });

TEST(AdversarialBatched, DeterministicPerSeed) {
  const Params p = Params::make(16, 8);
  const std::uint64_t budget = 8 * default_budget(p);
  const auto a = stabilize(Engine::kBatched, StartKind::kAdversarial, p,
                           Corruption::kRandomStates, 3, budget);
  const auto b = stabilize(Engine::kBatched, StartKind::kAdversarial, p,
                           Corruption::kRandomStates, 3, budget);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.interactions, b.interactions);
  EXPECT_EQ(a.leaders, b.leaders);
}

TEST(AdversarialBatched, ProjectionCountsEveryAgent) {
  // The counts projection of an adversarial configuration is a faithful
  // multiset: totals match n and every distinct state's multiplicity is
  // the number of agents carrying it.
  const Params p = Params::make(24, 6);
  util::Rng rng(util::substream(9, 77));
  const auto config =
      core::make_adversarial_config(p, Corruption::kRandomStates, rng);
  pp::CountsConfiguration<core::ElectLeader> counts(config);
  EXPECT_EQ(counts.population_size(), p.n);
  for (const auto& agent : config) {
    std::uint64_t expected = 0;
    for (const auto& other : config) expected += other == agent;
    EXPECT_EQ(counts.count_of(agent), expected);
  }
}

}  // namespace
}  // namespace ssle::analysis
