// Property-based tests: invariants that must hold along *every* trajectory
// of ElectLeader_r, checked on randomized runs from randomized (clean and
// adversarial) starting configurations across many seeds.
#include <gtest/gtest.h>

#include <numeric>

#include "core/adversary.hpp"
#include "core/detect_collision.hpp"
#include "core/elect_leader.hpp"
#include "core/safety.hpp"
#include "pp/simulator.hpp"

namespace ssle::core {
namespace {

struct TrajectoryChecker {
  Params params;

  /// Field-domain invariants of the formal state space (Fig. 1–3).
  void check_state_space(const Agent& a) const {
    ASSERT_GE(a.rank, 1u);
    ASSERT_LE(a.rank, params.n);
    ASSERT_LE(a.countdown, params.countdown_max);
    ASSERT_LE(a.reset.reset_count, params.reset_count_max);
    ASSERT_LE(a.reset.delay_timer, params.delay_timer_max);
    if (a.role == Role::kVerifying) {
      ASSERT_LT(a.sv.generation, Params::kGenerations);
      ASSERT_LE(a.sv.probation_timer, params.probation_max);
      if (!a.sv.dc.error) {
        const std::uint32_t group = params.group_of(a.rank);
        ASSERT_LE(a.sv.dc.msgs.size(), params.group_size(group));
        for (const auto& bucket : a.sv.dc.msgs) {
          for (std::size_t i = 0; i < bucket.size(); ++i) {
            ASSERT_GE(bucket[i].id, 1u);
            ASSERT_LE(bucket[i].id, params.ids_per_rank(group));
            if (i > 0) ASSERT_LT(bucket[i - 1].id, bucket[i].id);  // sorted
          }
        }
        // Own-messages-match-observations restriction (§5.1).
        const std::uint32_t bucket_idx = params.rank_in_group(a.rank) - 1;
        if (bucket_idx < a.sv.dc.msgs.size()) {
          for (const Msg& m : a.sv.dc.msgs[bucket_idx]) {
            ASSERT_LE(m.id, a.sv.dc.observations.size());
            ASSERT_EQ(a.sv.dc.observations[m.id - 1], m.content);
          }
        }
      }
    }
    if (a.role == Role::kRanking && a.ar.type == ArType::kDeputy) {
      ASSERT_GE(a.ar.deputy_id, 1u);
      ASSERT_LE(a.ar.deputy_id, params.r);
      ASSERT_LE(a.ar.counter, params.label_pool);
    }
  }
};

class TrajectoryProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrajectoryProperties, StateSpaceInvariantsHoldFromCleanStart) {
  const std::uint64_t seed = GetParam();
  const Params p = Params::make(24, 6);
  const TrajectoryChecker checker{p};
  ElectLeader protocol(p);
  pp::Simulator<ElectLeader> sim(protocol, seed);
  for (int round = 0; round < 300; ++round) {
    sim.step(4 * p.n);
    for (std::uint32_t i = 0; i < p.n; ++i) {
      checker.check_state_space(sim.population()[i]);
    }
  }
}

TEST_P(TrajectoryProperties, StateSpaceInvariantsHoldFromRandomStart) {
  const std::uint64_t seed = GetParam();
  const Params p = Params::make(16, 4);
  const TrajectoryChecker checker{p};
  util::Rng gen(util::substream(seed, 9));
  auto config = make_adversarial_config(p, Corruption::kRandomStates, gen);
  ElectLeader protocol(p);
  pp::Population<ElectLeader> pop(std::move(config));
  pp::Simulator<ElectLeader> sim(protocol, std::move(pop), seed);
  for (int round = 0; round < 300; ++round) {
    sim.step(4 * p.n);
    for (std::uint32_t i = 0; i < p.n; ++i) {
      checker.check_state_space(sim.population()[i]);
    }
  }
}

TEST_P(TrajectoryProperties, MessagesNeverDuplicateFromCleanStart) {
  // Observation 3 (App. E.1): started correctly, every (rank, ID) message
  // exists at most once, for the whole run — even across soft resets the
  // generation guard must prevent double circulation *within* interacting
  // generations; globally we check uniqueness among same-generation agents.
  const std::uint64_t seed = GetParam();
  const Params p = Params::make(16, 8);
  ElectLeader protocol(p);
  pp::Simulator<ElectLeader> sim(protocol, seed);
  for (int round = 0; round < 200; ++round) {
    sim.step(2 * p.n);
    // Check uniqueness per generation.
    for (std::uint32_t gen = 0; gen < Params::kGenerations; ++gen) {
      std::vector<std::vector<bool>> seen(p.n + 1);
      for (std::uint32_t i = 0; i < p.n; ++i) {
        const Agent& a = sim.population()[i];
        if (a.role != Role::kVerifying || a.sv.generation != gen ||
            a.sv.dc.error) {
          continue;
        }
        const std::uint32_t group = p.group_of(a.rank);
        const std::uint32_t begin = p.group_begin(group);
        for (std::size_t k = 0; k < a.sv.dc.msgs.size(); ++k) {
          auto& bitmap = seen[begin + k];
          if (bitmap.empty()) bitmap.assign(p.ids_per_rank(group) + 1, false);
          for (const Msg& m : a.sv.dc.msgs[k]) {
            ASSERT_FALSE(bitmap[m.id])
                << "duplicate message (" << begin + k << "," << m.id
                << ") in generation " << gen << " at round " << round;
            bitmap[m.id] = true;
          }
        }
      }
    }
  }
}

TEST_P(TrajectoryProperties, RolesOnlyMoveThroughLegalTransitions) {
  // Role graph: Resetting → Ranking (Reset), Ranking → Verifying (countdown
  // or epidemic), {Ranking, Verifying} → Resetting (TriggerReset /
  // infection).  Verifying → Ranking directly is illegal.
  const std::uint64_t seed = GetParam();
  const Params p = Params::make(16, 4);
  util::Rng gen(util::substream(seed, 10));
  auto config = make_adversarial_config(p, Corruption::kRandomStates, gen);
  ElectLeader protocol(p);
  pp::Population<ElectLeader> pop(std::move(config));
  pp::Simulator<ElectLeader> sim(protocol, std::move(pop), seed);
  std::vector<Role> prev;
  for (std::uint32_t i = 0; i < p.n; ++i) {
    prev.push_back(sim.population()[i].role);
  }
  for (int round = 0; round < 2000; ++round) {
    sim.step(1);
    for (std::uint32_t i = 0; i < p.n; ++i) {
      const Role now = sim.population()[i].role;
      if (prev[i] == Role::kVerifying) {
        ASSERT_NE(now, Role::kRanking)
            << "verifier became ranker without reset, agent " << i;
      }
      prev[i] = now;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrajectoryProperties,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(Properties, CleanRunNeverRaisesTopBeforeSafety) {
  // Lemma E.1(a) at the system level: from the clean start, no agent ever
  // enters ⊤ (the ranking AssignRanks produces is correct w.h.p., and the
  // collision detector must not false-positive on it).
  const Params p = Params::make(32, 16);
  ElectLeader protocol(p);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    pp::Simulator<ElectLeader> sim(protocol, seed);
    bool safe = false;
    for (int round = 0; round < 4000 && !safe; ++round) {
      sim.step(p.n);
      for (std::uint32_t i = 0; i < p.n; ++i) {
        const Agent& a = sim.population()[i];
        ASSERT_FALSE(a.role == Role::kVerifying && a.sv.dc.error)
            << "seed " << seed;
        ASSERT_NE(a.role, Role::kResetting) << "seed " << seed;
      }
      safe = is_safe_configuration(p, sim.population().states());
    }
    ASSERT_TRUE(safe) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ssle::core
