#include "core/fast_leader_elect.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "pp/scheduler.hpp"

namespace ssle::core {
namespace {

/// Runs FastLeaderElect standalone on n agents until all are done or the
/// budget runs out; returns the final states.
std::vector<FastLeState> run_fle(const Params& params, std::uint64_t seed,
                                 std::uint64_t budget) {
  std::vector<FastLeState> agents(params.n, fle_initial_state());
  pp::UniformScheduler sched(params.n, seed);
  util::Rng rng(util::substream(seed, 4));
  for (std::uint64_t t = 0; t < budget; ++t) {
    const auto [a, b] = sched.next();
    fle_interact(params, agents[a], agents[b], rng);
    bool all_done = true;
    for (const auto& s : agents) all_done &= s.leader_done;
    if (all_done) break;
  }
  return agents;
}

int leader_count(const std::vector<FastLeState>& agents) {
  int k = 0;
  for (const auto& s : agents) k += s.leader_done && s.leader_bit;
  return k;
}

TEST(FastLeaderElect, ActivationDrawsIdentifierOnce) {
  const Params p = Params::make(64, 8);
  util::Rng rng(1);
  FastLeState s = fle_initial_state();
  EXPECT_FALSE(s.drawn);
  fle_activate(p, s, rng);
  EXPECT_TRUE(s.drawn);
  EXPECT_GE(s.identifier, 1u);
  EXPECT_LE(s.identifier, p.identifier_space);
  EXPECT_EQ(s.min_identifier, s.identifier);
  const auto id = s.identifier;
  fle_activate(p, s, rng);  // idempotent
  EXPECT_EQ(s.identifier, id);
}

TEST(FastLeaderElect, MinIdentifierMerges) {
  const Params p = Params::make(64, 8);
  util::Rng rng(2);
  FastLeState u = fle_initial_state();
  FastLeState v = fle_initial_state();
  fle_interact(p, u, v, rng);
  EXPECT_EQ(u.min_identifier, v.min_identifier);
  EXPECT_EQ(u.min_identifier, std::min(u.identifier, v.identifier));
}

TEST(FastLeaderElect, CountdownDecrementsAndFinishes) {
  const Params p = Params::make(64, 8);
  util::Rng rng(3);
  FastLeState u = fle_initial_state();
  FastLeState v = fle_initial_state();
  fle_interact(p, u, v, rng);
  const auto before = u.le_count;
  fle_interact(p, u, v, rng);
  EXPECT_EQ(u.le_count, before - 1);
  for (int i = 0; i < 10000 && !u.leader_done; ++i) fle_interact(p, u, v, rng);
  EXPECT_TRUE(u.leader_done);
  EXPECT_TRUE(v.leader_done);
  // Two agents: exactly one has the min and wins.
  EXPECT_EQ((u.leader_bit ? 1 : 0) + (v.leader_bit ? 1 : 0), 1);
}

class FleSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FleSweep, ElectsExactlyOneLeaderWhp) {
  const std::uint32_t n = GetParam();
  const Params p = Params::make(n, std::max(1u, n / 4));
  int unique = 0;
  constexpr int kTrials = 20;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto agents = run_fle(p, 1000 + trial, 400ull * n * 20);
    for (const auto& s : agents) ASSERT_TRUE(s.leader_done);
    unique += (leader_count(agents) == 1);
  }
  // Lemma D.10: unique leader w.h.p.
  EXPECT_GE(unique, kTrials - 1) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, FleSweep,
                         ::testing::Values(4u, 8u, 16u, 32u, 64u, 128u));

TEST(FastLeaderElect, TimeIsLogarithmic) {
  // Lemma D.10: time O(log n).  Measure completion interactions at two
  // sizes and check the growth is ~ n log n (interactions), i.e. far less
  // than quadratic.
  auto completion = [](std::uint32_t n) {
    const Params p = Params::make(n, 2);
    std::vector<FastLeState> agents(n, fle_initial_state());
    pp::UniformScheduler sched(n, 42);
    util::Rng rng(43);
    std::uint64_t t = 0;
    auto all_done = [&] {
      for (const auto& s : agents) {
        if (!s.leader_done) return false;
      }
      return true;
    };
    while (!all_done()) {
      const auto [a, b] = sched.next();
      fle_interact(p, agents[a], agents[b], rng);
      ++t;
    }
    return t;
  };
  const auto t64 = completion(64);
  const auto t256 = completion(256);
  // n log n growth from 64→256 is ×(256·9)/(64·7) ≈ 5.1; quadratic is ×16.
  EXPECT_LT(static_cast<double>(t256),
            10.0 * static_cast<double>(t64));
}

}  // namespace
}  // namespace ssle::core
