// StateInterner: id stability, reclamation/reuse, growth, fallbacks.
#include "pp/interner.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace ssle::pp {
namespace {

TEST(Interner, InternIsIdempotentAndIdsAreDense) {
  StateInterner<int> in;
  const auto a = in.intern(10);
  const auto b = in.intern(20);
  EXPECT_NE(a, b);
  EXPECT_EQ(in.intern(10), a);
  EXPECT_EQ(in.intern(20), b);
  EXPECT_EQ(in.size(), 2u);
  EXPECT_EQ(in.capacity(), 2u);
  EXPECT_EQ(in.state(a), 10);
  EXPECT_EQ(in.state(b), 20);
}

TEST(Interner, FindNeverAllocates) {
  StateInterner<int> in;
  EXPECT_EQ(in.find(7), StateInterner<int>::kNoId);
  EXPECT_EQ(in.size(), 0u);
  const auto id = in.intern(7);
  EXPECT_EQ(in.find(7), id);
  EXPECT_EQ(in.size(), 1u);
}

TEST(Interner, GrowthKeepsEveryIdResolvable) {
  // Far past the initial 16-slot table: every rebuild must re-seat every
  // allocated id.
  StateInterner<int> in;
  std::vector<std::uint32_t> ids;
  for (int s = 0; s < 5000; ++s) ids.push_back(in.intern(s));
  EXPECT_EQ(in.size(), 5000u);
  for (int s = 0; s < 5000; ++s) {
    EXPECT_EQ(in.intern(s), ids[static_cast<std::size_t>(s)]) << s;
    EXPECT_EQ(in.state(ids[static_cast<std::size_t>(s)]), s) << s;
  }
}

TEST(Interner, ReclaimReleasesAndReusesIdsKeepingSurvivorsStable) {
  StateInterner<int> in;
  std::vector<std::uint32_t> ids;
  for (int s = 0; s < 100; ++s) ids.push_back(in.intern(s));
  const auto v0 = in.version();

  // Kill the even states.
  const auto released =
      in.reclaim([&](std::uint32_t id) { return in.state(id) % 2 == 0; });
  EXPECT_EQ(released, 50u);
  EXPECT_EQ(in.size(), 50u);
  EXPECT_GT(in.version(), v0);
  EXPECT_EQ(in.capacity(), 100u);  // no shrink yet: slots await reuse

  // Survivors keep their ids; dead states are gone from lookup.
  for (int s = 1; s < 100; s += 2) {
    EXPECT_EQ(in.find(s), ids[static_cast<std::size_t>(s)]) << s;
    EXPECT_TRUE(in.allocated(ids[static_cast<std::size_t>(s)]));
  }
  for (int s = 0; s < 100; s += 2) {
    EXPECT_EQ(in.find(s), StateInterner<int>::kNoId) << s;
    EXPECT_FALSE(in.allocated(ids[static_cast<std::size_t>(s)]));
  }

  // New states reuse reclaimed slots: the arena does not grow.
  for (int s = 1000; s < 1050; ++s) {
    const auto id = in.intern(s);
    EXPECT_LT(id, 100u);
    EXPECT_EQ(in.state(id), s);
  }
  EXPECT_EQ(in.capacity(), 100u);
  EXPECT_EQ(in.size(), 100u);
}

TEST(Interner, ReclaimNothingDoesNotBumpVersion) {
  StateInterner<int> in;
  in.intern(1);
  const auto v0 = in.version();
  EXPECT_EQ(in.reclaim([](std::uint32_t) { return false; }), 0u);
  EXPECT_EQ(in.version(), v0);
}

TEST(Interner, ShrinkTrimsTrailingReclaimedSlots) {
  StateInterner<int> in;
  for (int s = 0; s < 10; ++s) in.intern(s);
  // Kill ids 4..9 (the tail) and 1 (interior).
  in.reclaim([&](std::uint32_t id) { return id >= 4 || id == 1; });
  EXPECT_EQ(in.shrink(), 4u);  // tail trimmed down to id 3
  EXPECT_EQ(in.size(), 3u);
  EXPECT_TRUE(in.allocated(0));
  EXPECT_FALSE(in.allocated(1));  // interior free slot survives shrink
  EXPECT_TRUE(in.allocated(2));
  EXPECT_TRUE(in.allocated(3));
  // The interior slot is still reusable; trimmed ids are not handed out.
  const auto id = in.intern(77);
  EXPECT_EQ(id, 1u);
  EXPECT_EQ(in.capacity(), 4u);
}

// ---------------------------------------------------------------------------
// Degenerate hash: correctness must not depend on hash quality.
// ---------------------------------------------------------------------------

struct CollidingState {
  int v = 0;
  friend bool operator==(const CollidingState&, const CollidingState&) =
      default;
};

}  // namespace
}  // namespace ssle::pp

template <>
struct std::hash<ssle::pp::CollidingState> {
  std::size_t operator()(const ssle::pp::CollidingState&) const noexcept {
    return 42;  // every state collides
  }
};

namespace ssle::pp {
namespace {

TEST(Interner, SurvivesTotalHashCollisions) {
  static_assert(HashableState<CollidingState>);
  StateInterner<CollidingState> in;
  std::vector<std::uint32_t> ids;
  for (int s = 0; s < 200; ++s) ids.push_back(in.intern(CollidingState{s}));
  EXPECT_EQ(in.size(), 200u);
  for (int s = 0; s < 200; ++s) {
    EXPECT_EQ(in.intern(CollidingState{s}), ids[static_cast<std::size_t>(s)]);
  }
  in.reclaim([&](std::uint32_t id) { return in.state(id).v < 100; });
  for (int s = 100; s < 200; ++s) {
    EXPECT_EQ(in.find(CollidingState{s}), ids[static_cast<std::size_t>(s)]);
  }
  EXPECT_EQ(in.find(CollidingState{5}), StateInterner<CollidingState>::kNoId);
}

// ---------------------------------------------------------------------------
// Non-hashable fallback.
// ---------------------------------------------------------------------------

struct OpaqueKey {
  std::string tag;
  friend bool operator==(const OpaqueKey&, const OpaqueKey&) = default;
};

TEST(Interner, LinearScanFallbackMatchesHashedSemantics) {
  static_assert(!HashableState<OpaqueKey>);
  StateInterner<OpaqueKey> in;
  const auto a = in.intern(OpaqueKey{"a"});
  const auto b = in.intern(OpaqueKey{"b"});
  EXPECT_NE(a, b);
  EXPECT_EQ(in.intern(OpaqueKey{"a"}), a);
  EXPECT_EQ(in.find(OpaqueKey{"b"}), b);
  EXPECT_EQ(in.find(OpaqueKey{"c"}), StateInterner<OpaqueKey>::kNoId);
  in.reclaim([&](std::uint32_t id) { return id == a; });
  EXPECT_EQ(in.find(OpaqueKey{"a"}), StateInterner<OpaqueKey>::kNoId);
  const auto c = in.intern(OpaqueKey{"c"});
  EXPECT_EQ(c, a);  // reuses the reclaimed slot
  EXPECT_EQ(in.find(OpaqueKey{"b"}), b);
}

}  // namespace
}  // namespace ssle::pp
