#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "analysis/census.hpp"
#include "analysis/experiment.hpp"
#include "analysis/measure.hpp"
#include "core/adversary.hpp"

namespace ssle::analysis {
namespace {

using core::Corruption;
using core::Params;

TEST(Sweep, AggregatesAndCountsFailures) {
  const SweepResult res = sweep(0, 10, [](std::uint64_t seed) {
    return seed % 3 == 0 ? -1.0 : static_cast<double>(seed);
  });
  EXPECT_EQ(res.failures, 4u);  // seeds 0, 3, 6, 9
  EXPECT_EQ(res.samples.size(), 6u);
  EXPECT_GT(res.summary.mean, 0.0);
}

TEST(Sweep, AllConvergedNoFailures) {
  const SweepResult res =
      sweep(100, 5, [](std::uint64_t) { return 1.0; });
  EXPECT_EQ(res.failures, 0u);
  EXPECT_DOUBLE_EQ(res.summary.mean, 1.0);
}

TEST(Sweep, NanIsAFailureNotASample) {
  // Regression: `value < 0.0` is false for NaN, so a NaN measurement used
  // to land in the samples and poison mean/stddev/percentiles.
  const SweepResult res = sweep(0, 4, [](std::uint64_t seed) {
    return seed == 1 ? std::numeric_limits<double>::quiet_NaN() : 2.5;
  });
  EXPECT_EQ(res.failures, 1u);
  EXPECT_EQ(res.samples.size(), 3u);
  EXPECT_DOUBLE_EQ(res.summary.mean, 2.5);
  EXPECT_TRUE(std::isfinite(res.summary.stddev));
}

TEST(Sweep, InfinityIsAFailureNotASample) {
  const SweepResult res = sweep(0, 3, [](std::uint64_t seed) {
    return seed == 0 ? std::numeric_limits<double>::infinity() : 4.0;
  });
  EXPECT_EQ(res.failures, 1u);
  EXPECT_EQ(res.samples.size(), 2u);
  EXPECT_DOUBLE_EQ(res.summary.mean, 4.0);
}

TEST(Measure, DefaultBudgetScalesInverselyWithR) {
  const auto slow = default_budget(Params::make(128, 2));
  const auto fast = default_budget(Params::make(128, 64));
  EXPECT_GT(slow, fast);
}

TEST(Measure, CleanStabilizationReportsParallelTime) {
  const Params p = Params::make(16, 8);
  const auto res = stabilize(Engine::kNaive, p, 3, default_budget(p));
  ASSERT_TRUE(res.converged);
  EXPECT_DOUBLE_EQ(res.parallel_time,
                   static_cast<double>(res.interactions) / p.n);
  EXPECT_EQ(res.leaders, 1u);
}

TEST(Measure, NonConvergenceReported) {
  const Params p = Params::make(16, 8);
  // Ridiculously small budget: cannot converge.
  const auto res = stabilize(Engine::kNaive, p, 3, 10);
  EXPECT_FALSE(res.converged);
}

TEST(Measure, AdversarialUsesDistinctGeneratorStream) {
  const Params p = Params::make(16, 8);
  const auto a =
      stabilize(Engine::kNaive, StartKind::kAdversarial, p, Corruption::kNone,
                3, default_budget(p));
  // kNone is already safe: zero interactions needed.
  EXPECT_TRUE(a.converged);
  EXPECT_EQ(a.interactions, 0u);
}

TEST(Census, CountsRolesAndMessages) {
  const Params p = Params::make(16, 8);
  const auto config = core::make_safe_config(p);
  const Census c = take_census(p, config);
  EXPECT_EQ(c.verifiers, 16u);
  EXPECT_EQ(c.rankers, 0u);
  EXPECT_EQ(c.resetters, 0u);
  EXPECT_EQ(c.leaders, 1u);
  EXPECT_EQ(c.errors, 0u);
  EXPECT_EQ(c.distinct_generations, 1u);
  EXPECT_EQ(c.max_rank_multiplicity, 1u);
  // Total circulating messages = Σ_groups m · ids_per_rank.
  std::uint64_t expected = 0;
  for (std::uint32_t g = 0; g < p.num_groups(); ++g) {
    expected += static_cast<std::uint64_t>(p.group_size(g)) *
                p.ids_per_rank(g);
  }
  EXPECT_EQ(c.total_messages, expected);
  EXPECT_GT(c.approx_bytes, 0u);
}

TEST(Census, DetectsDuplicatesAndErrors) {
  const Params p = Params::make(16, 8);
  auto config = core::make_safe_config(p);
  config[3].rank = config[4].rank;
  config[5].sv.dc.error = true;
  const Census c = take_census(p, config);
  EXPECT_EQ(c.max_rank_multiplicity, 2u);
  EXPECT_EQ(c.errors, 1u);
}

TEST(Banner, PrintsAllFields) {
  std::ostringstream captured;
  auto* old = std::cout.rdbuf(captured.rdbuf());
  print_banner("F1", "claim text", "prediction text");
  std::cout.rdbuf(old);
  const std::string out = captured.str();
  EXPECT_NE(out.find("F1"), std::string::npos);
  EXPECT_NE(out.find("claim text"), std::string::npos);
  EXPECT_NE(out.find("prediction text"), std::string::npos);
}

}  // namespace
}  // namespace ssle::analysis
