#include "core/derandomized.hpp"

#include <gtest/gtest.h>

#include "core/safety.hpp"
#include "pp/simulator.hpp"

namespace ssle::core {
namespace {

TEST(Derandomized, TransitionIsDeterministicFunctionOfStates) {
  const Params p = Params::make(16, 4);
  DerandomizedElectLeader protocol(p);
  DerandomizedElectLeader::State u1 = protocol.initial_state(0);
  DerandomizedElectLeader::State v1 = protocol.initial_state(1);
  auto u2 = u1;
  auto v2 = v1;
  // Two *different* engine RNGs must not influence the outcome.
  util::Rng rng_a(111), rng_b(999);
  for (int i = 0; i < 200; ++i) {
    protocol.interact(u1, v1, rng_a);
    protocol.interact(u2, v2, rng_b);
    ASSERT_EQ(u1.agent, u2.agent) << "step " << i;
    ASSERT_EQ(v1.agent, v2.agent) << "step " << i;
  }
}

TEST(Derandomized, ReplayReproducesRunBitForBit) {
  const Params p = Params::make(16, 8);
  DerandomizedElectLeader protocol(p);
  // Same scheduler seed → identical trajectories, regardless of the agent
  // RNG substream (which is unused).
  pp::Simulator<DerandomizedElectLeader> a(protocol, 5);
  pp::Simulator<DerandomizedElectLeader> b(protocol, 5);
  a.step(20000);
  b.step(20000);
  for (std::uint32_t i = 0; i < p.n; ++i) {
    ASSERT_EQ(a.population()[i].agent, b.population()[i].agent);
  }
}

class DerandomizedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DerandomizedSweep, StabilizesWithSchedulerRandomnessOnly) {
  const Params p = Params::make(16, 4);
  DerandomizedElectLeader protocol(p);
  pp::Simulator<DerandomizedElectLeader> sim(protocol, GetParam());
  const std::uint64_t L = Params::log2ceil(p.n);
  const std::uint64_t budget = 3000ull * p.n * L * (p.n / p.r) + 500000;
  const auto res = sim.run_until(
      [&](const pp::Population<DerandomizedElectLeader>& pop, std::uint64_t) {
        std::vector<Agent> agents;
        agents.reserve(pop.size());
        for (std::uint32_t i = 0; i < pop.size(); ++i) {
          agents.push_back(pop[i].agent);
        }
        return is_safe_configuration(p, agents);
      },
      budget, p.n);
  ASSERT_TRUE(res.converged) << "seed " << GetParam();
  std::uint32_t leaders = 0;
  for (std::uint32_t i = 0; i < p.n; ++i) {
    leaders += DerandomizedElectLeader::is_leader(sim.population()[i]);
  }
  EXPECT_EQ(leaders, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DerandomizedSweep,
                         ::testing::Range<std::uint64_t>(1, 6));

}  // namespace
}  // namespace ssle::core
