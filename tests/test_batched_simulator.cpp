// BatchedSimulator semantics + statistical equivalence with Simulator.
//
// The batched engine is an exact sampler of the same counts Markov chain
// the naive engine induces (see pp/batched_simulator.hpp), so convergence
// times must agree in distribution — not just roughly: means, spreads and
// (for a tiny population, where the collision path dominates) the whole
// empirical law are compared between engines.
#include "pp/batched_simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "analysis/measure.hpp"
#include "core/elect_leader.hpp"
#include "core/params.hpp"
#include "pp/epidemic.hpp"
#include "pp/simulator.hpp"

namespace ssle::pp {
namespace {

TEST(BatchedSimulator, InitialConfigurationComesFromProtocol) {
  Epidemic proto{16};
  BatchedSimulator<Epidemic> sim(proto, 1);
  EXPECT_EQ(sim.config().count_of(1), 1u);
  EXPECT_EQ(sim.config().count_of(0), 15u);
  EXPECT_EQ(sim.interactions(), 0u);
}

TEST(BatchedSimulator, StepCountsInteractionsExactly) {
  Epidemic proto{16};
  BatchedSimulator<Epidemic> sim(proto, 1);
  sim.step(100);
  EXPECT_EQ(sim.interactions(), 100u);
  sim.step();
  EXPECT_EQ(sim.interactions(), 101u);
  EXPECT_EQ(sim.config().population_size(), 16u);  // agents are conserved
}

TEST(BatchedSimulator, PopulationMayChangeBetweenBlocks) {
  // Churn support (ISSUE 10): n is re-read per block, so registry edits
  // between step() calls — joins, leaves — must be picked up by the block
  // envelope, the scheduler weights and the metrics.
  Epidemic proto{64};
  BatchedSimulator<Epidemic> sim(proto, 5);
  sim.step(500);  // ≫ n·ln n: the original 64 agents are fully infected
  for (int i = 0; i < 64; ++i) sim.config().insert_agent(0);
  EXPECT_EQ(sim.config().population_size(), 128u);
  sim.step(500);
  EXPECT_EQ(sim.interactions(), 1000u);
  EXPECT_EQ(sim.metrics().population, 128u);

  util::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    auto& cfg = sim.config();
    cfg.remove_agent(cfg.sample_class(rng.below(cfg.population_size())));
  }
  EXPECT_EQ(sim.config().population_size(), 28u);
  EXPECT_EQ(sim.config().count_of(0) + sim.config().count_of(1), 28u);

  // The epidemic's absorbing laws still hold over the surviving agents.
  const bool any_infected = sim.config().count_of(1) > 0;
  sim.step(4000);
  EXPECT_EQ(sim.config().population_size(), 28u);
  EXPECT_EQ(sim.config().count_of(1), any_infected ? 28u : 0u);
  EXPECT_EQ(sim.metrics().population, 28u);
}

TEST(BatchedSimulator, DeterministicGivenSeed) {
  Epidemic proto{256};
  BatchedSimulator<Epidemic> a(proto, 9);
  BatchedSimulator<Epidemic> b(proto, 9);
  a.step(5000);
  b.step(5000);
  EXPECT_EQ(a.config().count_of(1), b.config().count_of(1));
  EXPECT_EQ(a.config().count_of(0), b.config().count_of(0));
}

TEST(BatchedSimulator, RunUntilChecksInitialConfiguration) {
  Epidemic proto{8};
  BatchedSimulator<Epidemic> sim(proto, 3);
  const auto result = sim.run_until(
      [](const CountsConfiguration<Epidemic>&, std::uint64_t) { return true; },
      1000);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.interactions, 0u);
}

TEST(BatchedSimulator, RunUntilRespectsBudget) {
  Epidemic proto{8};
  BatchedSimulator<Epidemic> sim(proto, 3);
  const auto result = sim.run_until(
      [](const CountsConfiguration<Epidemic>&, std::uint64_t) { return false; },
      500, 64);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.interactions, 500u);
}

TEST(BatchedSimulator, EpidemicEventuallyInfectsAll) {
  Epidemic proto{64};
  BatchedSimulator<Epidemic> sim(proto, 2);
  const auto result = sim.run_until(
      [](const CountsConfiguration<Epidemic>& c, std::uint64_t) {
        return c.count_of(1) == c.population_size();
      },
      1u << 20);
  EXPECT_TRUE(result.converged);
  // Same w.h.p. bound as the naive engine's test (Lemma A.2): 7·64·ln 64.
  EXPECT_LT(result.interactions, 4000u);
  EXPECT_GE(result.interactions, 64u);
}

TEST(BatchedSimulator, ElectLeaderRunsOnTheHashIndexedPath) {
  // core::Agent carries a std::hash specialization, so the registry takes
  // the O(1) hash-indexed path for the full protocol.
  static_assert(HashableState<core::Agent>);
  const core::Params params = core::Params::make(8, 4);
  core::ElectLeader protocol(params);
  BatchedSimulator<core::ElectLeader> sim(protocol, 5);
  sim.step(2000);
  EXPECT_EQ(sim.interactions(), 2000u);
  EXPECT_EQ(sim.config().population_size(), 8u);
}

namespace {

/// Epidemic over a deliberately non-hashable state: keeps the registry's
/// linear-scan fallback covered now that every shipped state type hashes.
struct OpaqueState {
  int infected = 0;
  friend bool operator==(const OpaqueState&, const OpaqueState&) = default;
};

struct OpaqueEpidemic {
  using State = OpaqueState;
  std::uint32_t n;
  std::uint32_t population_size() const { return n; }
  State initial_state(std::uint32_t agent) const {
    return State{agent == 0 ? 1 : 0};
  }
  void interact(State& u, State& v, util::Rng&) const {
    if (u.infected == 1 || v.infected == 1) u.infected = v.infected = 1;
  }
};

}  // namespace

TEST(BatchedSimulator, LinearScanFallbackStillWorks) {
  static_assert(!HashableState<OpaqueState>);
  OpaqueEpidemic proto{64};
  BatchedSimulator<OpaqueEpidemic> sim(proto, 2);
  const auto result = sim.run_until(
      [](const CountsConfiguration<OpaqueEpidemic>& c, std::uint64_t) {
        return c.count_of(OpaqueState{1}) == c.population_size();
      },
      1u << 20);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.interactions, 4000u);
}

// ---------------------------------------------------------------------------
// Statistical equivalence: epidemic convergence time.
// ---------------------------------------------------------------------------

std::uint64_t epidemic_time_naive(std::uint32_t n, std::uint64_t seed) {
  Epidemic proto{n};
  Simulator<Epidemic> sim(proto, seed);
  const auto r = sim.run_until(
      [](const Population<Epidemic>& pop, std::uint64_t) {
        for (std::uint32_t i = 0; i < pop.size(); ++i) {
          if (pop[i] == 0) return false;
        }
        return true;
      },
      1u << 22, /*probe_every=*/1);
  EXPECT_TRUE(r.converged);
  return r.interactions;
}

std::uint64_t epidemic_time_batched(
    std::uint32_t n, std::uint64_t seed,
    BlockSampling sampling = BlockSampling::kAuto) {
  Epidemic proto{n};
  BatchedSimulator<Epidemic> sim(proto, seed, sampling);
  const auto r = sim.run_until(
      [](const CountsConfiguration<Epidemic>& c, std::uint64_t) {
        return c.count_of(1) == c.population_size();
      },
      1u << 22, /*probe_every=*/1);
  EXPECT_TRUE(r.converged);
  return r.interactions;
}

struct SampleStats {
  double mean = 0.0;
  double sd = 0.0;
};

SampleStats stats_of(const std::vector<std::uint64_t>& xs) {
  double sum = 0.0, sumsq = 0.0;
  for (const auto x : xs) {
    sum += static_cast<double>(x);
    sumsq += static_cast<double>(x) * static_cast<double>(x);
  }
  const double mean = sum / static_cast<double>(xs.size());
  const double var = sumsq / static_cast<double>(xs.size()) - mean * mean;
  return {mean, std::sqrt(std::max(0.0, var))};
}

TEST(BatchedEquivalence, EpidemicConvergenceTimesMatch) {
  const std::uint32_t n = 48;
  const int trials = 300;
  std::vector<std::uint64_t> naive, batched;
  naive.reserve(trials);
  batched.reserve(trials);
  for (int t = 0; t < trials; ++t) {
    naive.push_back(epidemic_time_naive(n, 1000 + t));
    batched.push_back(epidemic_time_batched(n, 5000 + t));
  }
  const auto sn = stats_of(naive);
  const auto sb = stats_of(batched);
  // E[T] = (n-1)·H_{n-1} ≈ 208 with sd ≈ 40; the standard error of each
  // mean over 300 trials is ≈ 2.3, so 12 is a ≈3.7σ band for the gap.
  EXPECT_NEAR(sn.mean, sb.mean, 12.0)
      << "naive mean=" << sn.mean << " batched mean=" << sb.mean;
  EXPECT_GT(sb.sd, 0.6 * sn.sd);
  EXPECT_LT(sb.sd, 1.6 * sn.sd);
}

// ---------------------------------------------------------------------------
// Fenwick block sampler: forced-path statistical equivalence.  The Fenwick
// path draws the 2L block agents sequentially through the registry index
// and defers outputs until the block ends — a different (and differently
// random) realization of the same block law, so it must match the naive
// engine in distribution just like the dense path does.
// ---------------------------------------------------------------------------

TEST(FenwickPath, EpidemicConvergenceTimesMatchNaive) {
  const std::uint32_t n = 48;
  const int trials = 300;
  std::vector<std::uint64_t> naive, fenwick;
  naive.reserve(trials);
  fenwick.reserve(trials);
  for (int t = 0; t < trials; ++t) {
    naive.push_back(epidemic_time_naive(n, 1000 + t));
    fenwick.push_back(
        epidemic_time_batched(n, 40000 + t, BlockSampling::kFenwick));
  }
  const auto sn = stats_of(naive);
  const auto sb = stats_of(fenwick);
  // Same band as the dense-path test: ≈3.7σ for the mean gap at 300 trials.
  EXPECT_NEAR(sn.mean, sb.mean, 12.0)
      << "naive mean=" << sn.mean << " fenwick mean=" << sb.mean;
  EXPECT_GT(sb.sd, 0.6 * sn.sd);
  EXPECT_LT(sb.sd, 1.6 * sn.sd);
}

TEST(FenwickPath, TinyPopulationLawMatches) {
  // n = 4 makes within-block collisions the common case, stressing the
  // Fenwick path's deferred-output used/unused collision sampling.
  const std::uint32_t n = 4;
  const int trials = 3000;
  std::map<std::uint64_t, int> pmf_naive, pmf_fenwick;
  for (int t = 0; t < trials; ++t) {
    ++pmf_naive[epidemic_time_naive(n, 20000 + t)];
    ++pmf_fenwick[
        epidemic_time_batched(n, 90000 + t, BlockSampling::kFenwick)];
  }
  double tv = 0.0;
  std::map<std::uint64_t, double> diff;
  for (const auto& [k, c] : pmf_naive) diff[k] += static_cast<double>(c) / trials;
  for (const auto& [k, c] : pmf_fenwick) diff[k] -= static_cast<double>(c) / trials;
  for (const auto& [k, d] : diff) tv += std::abs(d);
  tv /= 2.0;
  EXPECT_LT(tv, 0.1) << "total variation distance " << tv;
}

TEST(FenwickPath, DeterministicGivenSeed) {
  Epidemic proto{256};
  BatchedSimulator<Epidemic> a(proto, 9, BlockSampling::kFenwick);
  BatchedSimulator<Epidemic> b(proto, 9, BlockSampling::kFenwick);
  a.step(5000);
  b.step(5000);
  EXPECT_EQ(a.config().count_of(1), b.config().count_of(1));
  EXPECT_EQ(a.config().count_of(0), b.config().count_of(0));
  EXPECT_GT(a.fenwick_blocks(), 0u);
  EXPECT_EQ(a.dense_blocks(), 0u);
}

namespace {

/// Identity protocol over n distinct states: q stays ≈ n forever, the
/// regime the Fenwick sampler exists for.
struct DistinctIdentity {
  using State = int;
  static constexpr bool kDeterministicInteract = true;
  std::uint32_t n;
  std::uint32_t population_size() const { return n; }
  State initial_state(std::uint32_t agent) const {
    return static_cast<int>(agent);
  }
  void interact(State&, State&, util::Rng&) const {}
};

}  // namespace

TEST(FenwickPath, AutoHeuristicPicksFenwickWhenRegistryIsWide) {
  // q = n = 4096 distinct states vs blocks of L ≈ √(πn)/2 ≈ 57: the scan
  // cost q dwarfs 2L·log2 q, so kAuto must route (almost) every block
  // through the Fenwick sampler.
  DistinctIdentity proto{4096};
  BatchedSimulator<DistinctIdentity> sim(proto, 21);
  sim.step(20000);
  EXPECT_EQ(sim.config().population_size(), 4096u);
  EXPECT_EQ(sim.config().num_live_states(), 4096u);
  EXPECT_GT(sim.fenwick_blocks(), 0u);
  EXPECT_GT(sim.fenwick_blocks(), 10 * sim.dense_blocks());
}

TEST(FenwickPath, AutoHeuristicKeepsDenseForNarrowRegistries) {
  // Two live states (epidemic): the dense hypergeometric path with its
  // bulk same-pair fast path is strictly better; kAuto must keep it.
  Epidemic proto{4096};
  BatchedSimulator<Epidemic> sim(proto, 22);
  sim.step(20000);
  EXPECT_GT(sim.dense_blocks(), 0u);
  EXPECT_EQ(sim.fenwick_blocks(), 0u);
}

// ---------------------------------------------------------------------------
// Flat block sampler: by construction it consumes the same rng_.below(n−t)
// draws as the Fenwick descent and resolves them to the same class (both
// walk registry cumulative-count order), so forced kFlat and forced
// kFenwick runs are BIT-IDENTICAL — not merely equal in law.  That identity
// is the whole correctness argument for the flat path, so it is pinned
// exactly, at several checkpoints, on a narrow and on a wide registry.
// ---------------------------------------------------------------------------

TEST(FlatPath, BitIdenticalToFenwickOnEpidemic) {
  Epidemic proto{256};
  BatchedSimulator<Epidemic> flat(proto, 9, BlockSampling::kFlat);
  BatchedSimulator<Epidemic> fenwick(proto, 9, BlockSampling::kFenwick);
  for (int checkpoint = 0; checkpoint < 10; ++checkpoint) {
    flat.step(500);
    fenwick.step(500);
    ASSERT_EQ(flat.config().count_of(1), fenwick.config().count_of(1))
        << "checkpoint " << checkpoint;
    ASSERT_EQ(flat.config().count_of(0), fenwick.config().count_of(0))
        << "checkpoint " << checkpoint;
  }
  EXPECT_GT(flat.flat_blocks(), 0u);
  EXPECT_EQ(flat.fenwick_blocks(), 0u);
  EXPECT_EQ(fenwick.flat_blocks(), 0u);
  EXPECT_GT(fenwick.fenwick_blocks(), 0u);
  EXPECT_GT(flat.flat_scan_draws(), 0u);
}

TEST(FlatPath, BitIdenticalToFenwickOnARandomizedWideRegistry) {
  // ElectLeader_r: randomized δ, interned Agent states, registry growth and
  // collisions — the flat path must track the Fenwick path through all of
  // it, including class ids created mid-block (count 0 in both views, so
  // never drawable).
  const core::Params params = core::Params::make(16, 4);
  core::ElectLeader protocol(params);
  BatchedSimulator<core::ElectLeader> flat(protocol, 5, BlockSampling::kFlat);
  BatchedSimulator<core::ElectLeader> fenwick(protocol, 5,
                                              BlockSampling::kFenwick);
  for (int checkpoint = 0; checkpoint < 8; ++checkpoint) {
    flat.step(250);
    fenwick.step(250);
    ASSERT_EQ(flat.config().num_live_states(),
              fenwick.config().num_live_states())
        << "checkpoint " << checkpoint;
    flat.config().for_each([&](const core::Agent& s, std::uint64_t c) {
      ASSERT_EQ(fenwick.config().count_of(s), c)
          << "checkpoint " << checkpoint;
    });
  }
  EXPECT_GT(flat.flat_blocks(), 0u);
  EXPECT_GT(fenwick.fenwick_blocks(), 0u);
}

TEST(FlatPath, TinyPopulationLawMatchesNaive) {
  // Same tiny-n TV pinning as the dense and Fenwick paths: the collision
  // branch of the flat sampler (used/unused bookkeeping over the snapshot)
  // must realize the same law the naive engine induces.
  const std::uint32_t n = 4;
  const int trials = 3000;
  std::map<std::uint64_t, int> pmf_naive, pmf_flat;
  for (int t = 0; t < trials; ++t) {
    ++pmf_naive[epidemic_time_naive(n, 20000 + t)];
    ++pmf_flat[epidemic_time_batched(n, 120000 + t, BlockSampling::kFlat)];
  }
  double tv = 0.0;
  std::map<std::uint64_t, double> diff;
  for (const auto& [k, c] : pmf_naive) diff[k] += static_cast<double>(c) / trials;
  for (const auto& [k, c] : pmf_flat) diff[k] -= static_cast<double>(c) / trials;
  for (const auto& [k, d] : diff) tv += std::abs(d);
  tv /= 2.0;
  EXPECT_LT(tv, 0.1) << "total variation distance " << tv;
}

TEST(FlatPath, AutoSubstitutesFlatExactlyWhereFenwickWouldRun) {
  // kAuto picks flat exactly where it would have picked Fenwick AND the
  // registry is narrow (q ≤ kFlatMaxStates).  DistinctIdentity at n = 48
  // straddles the per-block boundary q > 2L·⌈log2 q⌉: short blocks take
  // the per-draw (now flat) path, long blocks stay dense — and Fenwick
  // never fires at q ≤ 64, because flat replaces it everywhere it would
  // have run.
  DistinctIdentity proto{48};
  BatchedSimulator<DistinctIdentity> sim(proto, 23);
  sim.step(20000);
  EXPECT_GT(sim.flat_blocks(), 0u);
  EXPECT_GT(sim.dense_blocks(), 0u);
  EXPECT_EQ(sim.fenwick_blocks(), 0u);
}

TEST(FlatPath, AutoKeepsDenseForBulkEligibleNarrowRegistries) {
  // The epidemic's two live states make the dense bulk path unbeatable;
  // kAuto must not reroute it through the flat scanner.
  Epidemic proto{4096};
  BatchedSimulator<Epidemic> sim(proto, 22);
  sim.step(20000);
  EXPECT_GT(sim.dense_blocks(), 0u);
  EXPECT_EQ(sim.flat_blocks(), 0u);
  EXPECT_EQ(sim.fenwick_blocks(), 0u);
}

TEST(BatchedEquivalence, TinyPopulationLawMatches) {
  // n = 4 makes within-block collisions the common case, stressing the
  // used/unused collision sampling; compare the whole empirical law of the
  // convergence time via total-variation distance.
  const std::uint32_t n = 4;
  const int trials = 3000;
  std::map<std::uint64_t, int> pmf_naive, pmf_batched;
  for (int t = 0; t < trials; ++t) {
    ++pmf_naive[epidemic_time_naive(n, 20000 + t)];
    ++pmf_batched[epidemic_time_batched(n, 60000 + t)];
  }
  double tv = 0.0;
  std::map<std::uint64_t, double> diff;
  for (const auto& [k, c] : pmf_naive) diff[k] += static_cast<double>(c) / trials;
  for (const auto& [k, c] : pmf_batched) diff[k] -= static_cast<double>(c) / trials;
  for (const auto& [k, d] : diff) tv += std::abs(d);
  tv /= 2.0;
  EXPECT_LT(tv, 0.1) << "total variation distance " << tv;
}

// ---------------------------------------------------------------------------
// Statistical equivalence: ElectLeader_r stabilization at small n.
// ---------------------------------------------------------------------------

double elect_leader_time_naive(const core::Params& params, std::uint64_t seed,
                               std::uint64_t budget) {
  const auto res =
      analysis::stabilize(analysis::Engine::kNaive, params, seed, budget);
  EXPECT_TRUE(res.converged);
  return res.parallel_time;
}

double elect_leader_time_batched(const core::Params& params,
                                 std::uint64_t seed, std::uint64_t budget) {
  const auto res =
      analysis::stabilize(analysis::Engine::kBatched, params, seed, budget);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.leaders, 1u);
  return res.parallel_time;
}

TEST(BatchedEquivalence, ElectLeaderStabilizationTimesMatch) {
  const core::Params params = core::Params::make(16, 4);
  const std::uint64_t budget = analysis::default_budget(params);
  const int trials = 25;
  std::vector<std::uint64_t> naive, batched;
  for (int t = 0; t < trials; ++t) {
    naive.push_back(static_cast<std::uint64_t>(
        elect_leader_time_naive(params, 300 + t, budget)));
    batched.push_back(static_cast<std::uint64_t>(
        elect_leader_time_batched(params, 900 + t, budget)));
  }
  const auto sn = stats_of(naive);
  const auto sb = stats_of(batched);
  // Stabilization time is heavy-tailed and 25 trials is modest, so allow a
  // wide band; a biased engine (e.g. broken collision handling) lands far
  // outside it.
  EXPECT_GT(sb.mean, 0.4 * sn.mean)
      << "naive mean=" << sn.mean << " batched mean=" << sb.mean;
  EXPECT_LT(sb.mean, 2.5 * sn.mean)
      << "naive mean=" << sn.mean << " batched mean=" << sb.mean;
}

}  // namespace
}  // namespace ssle::pp
