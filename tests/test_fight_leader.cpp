#include "baselines/fight_leader.hpp"

#include <gtest/gtest.h>

#include "pp/simulator.hpp"

namespace ssle::baselines {
namespace {

TEST(FightLeader, ResponderAbdicates) {
  FightLeaderElection p(4);
  FightLeaderElection::State u{true}, v{true};
  util::Rng rng(1);
  p.interact(u, v, rng);
  EXPECT_TRUE(u.leader);
  EXPECT_FALSE(v.leader);
}

TEST(FightLeader, NonLeadersAreInert) {
  FightLeaderElection p(4);
  FightLeaderElection::State u{false}, v{false};
  util::Rng rng(1);
  p.interact(u, v, rng);
  EXPECT_FALSE(u.leader);
  EXPECT_FALSE(v.leader);
}

class FightSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FightSweep, ConvergesToExactlyOneLeader) {
  const std::uint32_t n = GetParam();
  FightLeaderElection protocol(n);
  pp::Simulator<FightLeaderElection> sim(protocol, 5);
  const auto res = sim.run_until(
      [&](const pp::Population<FightLeaderElection>& pop, std::uint64_t) {
        return protocol.leader_count(pop.states()) == 1;
      },
      100ull * n * n);
  ASSERT_TRUE(res.converged) << "n=" << n;
  // Pairwise elimination needs Θ(n²) interactions (Θ(n) parallel time):
  // the last two leaders meet with probability 2/(n(n-1)) per step.
  EXPECT_GT(res.interactions, static_cast<std::uint64_t>(n) * n / 8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FightSweep,
                         ::testing::Values(4u, 16u, 64u, 256u));

TEST(FightLeader, LeaderlessConfigurationDeadlocks) {
  // The reason self-stabilization is non-trivial: this protocol can never
  // recover from a leaderless configuration.
  const std::uint32_t n = 16;
  FightLeaderElection protocol(n);
  pp::Population<FightLeaderElection> pop(
      std::vector<FightLeaderElection::State>(n, {false}));
  pp::Simulator<FightLeaderElection> sim(protocol, std::move(pop), 7);
  sim.step(100000);
  EXPECT_EQ(protocol.leader_count(sim.population().states()), 0u);
}

}  // namespace
}  // namespace ssle::baselines
