#include "core/safety.hpp"

#include <gtest/gtest.h>

#include "core/adversary.hpp"
#include "core/stable_verify.hpp"

namespace ssle::core {
namespace {

TEST(Safety, SafeConfigIsSafe) {
  const Params p = Params::make(16, 8);
  const auto config = make_safe_config(p);
  EXPECT_TRUE(ranking_correct(p, config));
  EXPECT_TRUE(single_generation(config));
  EXPECT_TRUE(message_system_consistent(p, config));
  EXPECT_TRUE(is_safe_configuration(p, config));
  EXPECT_EQ(leader_count(config), 1u);
}

TEST(Safety, DuplicateRankBreaksRanking) {
  const Params p = Params::make(16, 8);
  auto config = make_safe_config(p);
  config[3].rank = config[5].rank;
  EXPECT_FALSE(ranking_correct(p, config));
  EXPECT_FALSE(is_safe_configuration(p, config));
}

TEST(Safety, RankerBreaksSafety) {
  const Params p = Params::make(16, 8);
  auto config = make_safe_config(p);
  config[0].role = Role::kRanking;
  EXPECT_FALSE(ranking_correct(p, config));
  EXPECT_FALSE(single_generation(config));
}

TEST(Safety, MixedGenerationsBreakSingleGeneration) {
  const Params p = Params::make(16, 8);
  auto config = make_safe_config(p);
  config[7].sv.generation = 1;
  EXPECT_TRUE(ranking_correct(p, config));
  EXPECT_FALSE(single_generation(config));
  EXPECT_FALSE(is_safe_configuration(p, config));
}

TEST(Safety, CorruptedMessageBreaksConsistency) {
  const Params p = Params::make(16, 8);
  auto config = make_safe_config(p);
  // Corrupt a circulating message held by agent 0 for some *other* rank.
  auto& dc = config[0].sv.dc;
  bool corrupted = false;
  const std::uint32_t own_bucket = p.rank_in_group(config[0].rank) - 1;
  for (std::size_t k = 0; k < dc.msgs.size() && !corrupted; ++k) {
    if (k == own_bucket || dc.msgs[k].empty()) continue;
    dc.msgs[k].front().content = 424242;
    corrupted = true;
  }
  ASSERT_TRUE(corrupted);
  EXPECT_FALSE(message_system_consistent(p, config));
  EXPECT_FALSE(is_safe_configuration(p, config));
}

TEST(Safety, DuplicatedMessageBreaksConsistency) {
  const Params p = Params::make(16, 8);
  auto config = make_safe_config(p);
  // Copy a message from agent 0 to agent 1 (same group by construction of
  // adjacent ranks — pick two agents in one group).
  const std::uint32_t g0 = p.group_of(config[0].rank);
  std::size_t partner = 1;
  while (partner < config.size() &&
         p.group_of(config[partner].rank) != g0) {
    ++partner;
  }
  ASSERT_LT(partner, config.size());
  auto& from = config[0].sv.dc.msgs;
  auto& to = config[partner].sv.dc.msgs;
  ASSERT_FALSE(from[0].empty());
  to[0].push_back(from[0].front());
  std::sort(to[0].begin(), to[0].end());
  EXPECT_FALSE(message_system_consistent(p, config));
}

TEST(Safety, ErrorStateBreaksConsistency) {
  const Params p = Params::make(16, 8);
  auto config = make_safe_config(p);
  config[2].sv.dc.error = true;
  EXPECT_FALSE(message_system_consistent(p, config));
}

TEST(Safety, LeaderCountCountsOnlyVerifierRankOne) {
  const Params p = Params::make(8, 4);
  auto config = make_safe_config(p);
  EXPECT_EQ(leader_count(config), 1u);
  config[0].role = Role::kRanking;  // rank-1 agent not verifying
  EXPECT_EQ(leader_count(config), 0u);
  config[0].role = Role::kVerifying;
  config[1].rank = 1;  // second leader
  EXPECT_EQ(leader_count(config), 2u);
}

TEST(Safety, WrongPopulationSizeRejected) {
  const Params p = Params::make(16, 8);
  auto config = make_safe_config(p);
  config.pop_back();
  EXPECT_FALSE(ranking_correct(p, config));
}

}  // namespace
}  // namespace ssle::core
