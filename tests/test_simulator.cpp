#include "pp/simulator.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "pp/population.hpp"

namespace ssle::pp {
namespace {

/// Toy protocol: one-way epidemic.  State 1 infects state 0.
struct Epidemic {
  using State = int;
  std::uint32_t n;
  std::uint32_t population_size() const { return n; }
  State initial_state(std::uint32_t agent) const { return agent == 0 ? 1 : 0; }
  void interact(State& u, State& v, util::Rng&) const {
    if (u == 1 || v == 1) u = v = 1;
  }
};

int infected(const Population<Epidemic>& pop) {
  int k = 0;
  for (std::uint32_t i = 0; i < pop.size(); ++i) k += pop[i];
  return k;
}

TEST(Simulator, InitialPopulationComesFromProtocol) {
  Epidemic proto{16};
  Simulator<Epidemic> sim(proto, 1);
  EXPECT_EQ(infected(sim.population()), 1);
  EXPECT_EQ(sim.interactions(), 0u);
}

TEST(Simulator, StepCountsInteractions) {
  Epidemic proto{16};
  Simulator<Epidemic> sim(proto, 1);
  sim.step(100);
  EXPECT_EQ(sim.interactions(), 100u);
}

TEST(Simulator, EpidemicEventuallyInfectsAll) {
  Epidemic proto{64};
  Simulator<Epidemic> sim(proto, 2);
  const auto result = sim.run_until(
      [](const Population<Epidemic>& pop, std::uint64_t) {
        return infected(pop) == static_cast<int>(pop.size());
      },
      1u << 20);
  EXPECT_TRUE(result.converged);
  // Epidemics complete within c_epi·n·log n interactions w.h.p. (Lemma A.2,
  // c_epi < 7): 7·64·ln 64 ≈ 1863.
  EXPECT_LT(result.interactions, 4000u);
  EXPECT_GT(result.interactions, 64u);
}

TEST(Simulator, RunUntilChecksInitialConfiguration) {
  Epidemic proto{8};
  Simulator<Epidemic> sim(proto, 3);
  const auto result = sim.run_until(
      [](const Population<Epidemic>&, std::uint64_t) { return true; }, 1000);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.interactions, 0u);
}

TEST(Simulator, RunUntilRespectsBudget) {
  Epidemic proto{8};
  Simulator<Epidemic> sim(proto, 3);
  const auto result = sim.run_until(
      [](const Population<Epidemic>&, std::uint64_t) { return false; }, 500,
      64);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.interactions, 500u);
}

TEST(Simulator, DeterministicGivenSeed) {
  Epidemic proto{32};
  Simulator<Epidemic> a(proto, 9);
  Simulator<Epidemic> b(proto, 9);
  a.step(500);
  b.step(500);
  EXPECT_EQ(a.population().states(), b.population().states());
}

TEST(Simulator, ParallelTimeIsInteractionsOverN) {
  RunResult r;
  r.interactions = 640;
  EXPECT_DOUBLE_EQ(r.parallel_time(64), 10.0);
  EXPECT_DOUBLE_EQ(r.parallel_time(0), 0.0);
}

TEST(Simulator, ExplicitPopulationConstructor) {
  Epidemic proto{4};
  Population<Epidemic> pop(std::vector<int>{1, 1, 1, 1});
  Simulator<Epidemic> sim(proto, std::move(pop), 5);
  EXPECT_EQ(infected(sim.population()), 4);
}

}  // namespace
}  // namespace ssle::pp
