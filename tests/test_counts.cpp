#include "pp/counts.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "pp/batched_simulator.hpp"
#include "pp/community_counts.hpp"
#include "pp/epidemic.hpp"

namespace ssle::pp {
namespace {

TEST(Counts, CleanInitialConfigurationFromProtocol) {
  Epidemic proto{16};
  CountsConfiguration<Epidemic> config(proto);
  EXPECT_EQ(config.population_size(), 16u);
  EXPECT_EQ(config.count_of(1), 1u);
  EXPECT_EQ(config.count_of(0), 15u);
  EXPECT_EQ(config.count_of(7), 0u);  // never registered
}

TEST(Counts, ExplicitConfigurationProjectsToCounts) {
  CountsConfiguration<Epidemic> config(std::vector<int>{1, 0, 1, 1, 0});
  EXPECT_EQ(config.population_size(), 5u);
  EXPECT_EQ(config.count_of(1), 3u);
  EXPECT_EQ(config.count_of(0), 2u);
}

TEST(Counts, AddRemoveAndTotals) {
  CountsConfiguration<Epidemic> config(std::vector<int>{});
  EXPECT_EQ(config.population_size(), 0u);
  const auto idx = config.add(3, 10);
  config.add(4, 2);
  EXPECT_EQ(config.population_size(), 12u);
  config.remove_at(idx, 4);
  EXPECT_EQ(config.count_of(3), 6u);
  EXPECT_EQ(config.population_size(), 8u);
}

TEST(Counts, ToStatesExpandsTheMultiset) {
  CountsConfiguration<Epidemic> config(std::vector<int>{1, 0, 1, 0, 0});
  auto states = config.to_states();
  std::sort(states.begin(), states.end());
  EXPECT_EQ(states, (std::vector<int>{0, 0, 0, 1, 1}));
}

TEST(Counts, CompactReleasesDeadIdsAndKeepsLiveIdsStable) {
  CountsConfiguration<Epidemic> config(std::vector<int>{1, 2, 3});
  const auto id1 = config.index_of(1);
  const auto id2 = config.index_of(2);
  const auto id3 = config.index_of(3);
  config.remove_at(id2, 1);
  EXPECT_EQ(config.num_allocated_states(), 3u);
  const auto version = config.registry_version();
  config.compact();
  // The dead interior id is released (allocation count drops); live ids
  // are NOT re-indexed — that stability is what lets Fenwick sums, scratch
  // arrays and memoized transitions survive compaction.
  EXPECT_EQ(config.num_allocated_states(), 2u);
  EXPECT_GT(config.registry_version(), version);
  EXPECT_EQ(config.population_size(), 2u);
  EXPECT_EQ(config.count_of(2), 0u);
  EXPECT_EQ(config.count_of(1), 1u);
  EXPECT_EQ(config.count_of(3), 1u);
  EXPECT_EQ(config.index_of(1), id1);
  EXPECT_EQ(config.index_of(3), id3);
  // A newly registered state reuses the reclaimed slot instead of growing
  // the arena.
  const auto id4 = config.index_of(4);
  EXPECT_EQ(id4, id2);
  EXPECT_EQ(config.num_states(), 3u);
}

TEST(Counts, CompactTrimsTrailingDeadIds) {
  CountsConfiguration<Epidemic> config(std::vector<int>{1, 2, 3});
  const auto id3 = config.index_of(3);
  config.remove_at(id3, 1);
  config.compact();
  // A dead id at the arena's tail is trimmed outright: the registry (and
  // the Fenwick tree) shrink.
  EXPECT_EQ(config.num_states(), 2u);
  EXPECT_EQ(config.num_allocated_states(), 2u);
  EXPECT_EQ(config.count_of(3), 0u);
  EXPECT_EQ(config.count_of(1), 1u);
  EXPECT_EQ(config.count_of(2), 1u);
}

TEST(Counts, ChurnWithCompactKeepsTheRegistryBounded) {
  // Regression for long adversarial/churn runs: repeatedly move the whole
  // population through fresh states.  Without dead-id reclamation the
  // registry would end holding every state ever seen (~50·64 entries);
  // with compact() releasing dead ids for reuse it stays O(live).
  CountsConfiguration<Epidemic> config(std::vector<int>(64, 0));
  int next_state = 1;
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (int i = 0; i < 64; ++i) {
      config.remove_at(config.sample_class(0), 1);
      config.add(next_state++, 1);
    }
    config.compact();
    EXPECT_EQ(config.population_size(), 64u);
    EXPECT_EQ(config.num_live_states(), 64u);
    ASSERT_LE(config.num_states(), 256u) << "cycle " << cycle;
  }
}

TEST(Counts, ShouldCompactNeverFiresOnTinyRegistries) {
  // < 32 allocations: compact()'s O(capacity) rebuild isn't worth asking
  // about, no matter how dead the registry is.
  CountsConfiguration<Epidemic> config(std::vector<int>{});
  for (int s = 0; s < 20; ++s) config.add(s, 1);
  for (int s = 1; s < 20; ++s) config.remove_at(config.index_of(s), 1);
  EXPECT_EQ(config.num_live_states(), 1u);
  EXPECT_FALSE(config.should_compact());
}

TEST(Counts, ShouldCompactFiresOnTheDeadFractionRule) {
  CountsConfiguration<Epidemic> config(std::vector<int>{});
  for (int s = 0; s < 64; ++s) config.add(s, 1);
  EXPECT_FALSE(config.should_compact());  // fully live
  // Kill classes until dead ids are at least half the allocation.
  for (int s = 0; s < 31; ++s) config.remove_at(config.index_of(s), 1);
  EXPECT_FALSE(config.should_compact());  // 33 live of 64: not yet
  config.remove_at(config.index_of(31), 1);
  EXPECT_TRUE(config.should_compact());  // 32 live of 64: 2·live ≤ allocated
  config.compact();
  EXPECT_FALSE(config.should_compact());  // all dead ids reclaimed
  EXPECT_EQ(config.num_live_states(), 32u);
}

TEST(Counts, ShouldCompactFiresOnTheAbsoluteDeadRule) {
  // q ≈ n regime: with far more live than dead states the fraction rule
  // would wait for dead ≥ live, stranding a huge dead tail.  The policy's
  // absolute clause must fire at kCompactDeadAbsolute dead ids regardless.
  using Kernel = CountsKernel<int>;
  const std::uint32_t dead_bound = Kernel::kCompactDeadAbsolute;
  const std::uint32_t live = 3 * dead_bound;
  CountsConfiguration<Epidemic> config(std::vector<int>{});
  for (std::uint32_t s = 0; s < live + dead_bound; ++s) {
    config.add(static_cast<int>(s), 1);
  }
  for (std::uint32_t s = 0; s < dead_bound - 1; ++s) {
    config.remove_at(config.index_of(static_cast<int>(s)), 1);
  }
  // dead = bound - 1 and 2·live > allocated: neither clause fires.
  EXPECT_FALSE(config.should_compact());
  config.remove_at(config.index_of(static_cast<int>(dead_bound - 1)), 1);
  EXPECT_TRUE(config.should_compact());  // dead == bound
  config.compact();
  EXPECT_FALSE(config.should_compact());
  EXPECT_EQ(config.population_size(), static_cast<std::uint64_t>(live));
}

TEST(Counts, PolicyDrivenChurnKeepsTheRegistryBoundedAndExact) {
  // The engine-side loop: churn the whole population through fresh states
  // and compact only when should_compact() says so — the policy must both
  // trigger often enough to bound the registry and never corrupt counts.
  CountsConfiguration<Epidemic> config(std::vector<int>(64, 0));
  int next_state = 1;
  std::uint64_t compactions = 0;
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (int i = 0; i < 64; ++i) {
      config.remove_at(config.sample_class(0), 1);
      config.add(next_state++, 1);
    }
    if (config.should_compact()) {
      config.compact();
      ++compactions;
    }
    ASSERT_EQ(config.population_size(), 64u);
    ASSERT_EQ(config.num_live_states(), 64u);
    ASSERT_LE(config.num_states(), 256u) << "cycle " << cycle;
  }
  EXPECT_GT(compactions, 10u);  // the fraction rule fires every few cycles
}

TEST(Counts, CountIfAndForEach) {
  CountsConfiguration<Epidemic> config(std::vector<int>{1, 0, 1, 1, 0});
  EXPECT_EQ(config.count_if([](int s) { return s == 1; }), 3u);
  std::uint64_t seen = 0;
  config.for_each([&](int, std::uint64_t c) { seen += c; });
  EXPECT_EQ(seen, 5u);
}

// ---------------------------------------------------------------------------
// Fenwick index: point update / prefix query / sampled-class agreement.
// ---------------------------------------------------------------------------

/// Reference for sample_class: linear scan over the counts.
template <typename Config>
std::uint32_t sample_class_dense(const Config& config, std::uint64_t pos) {
  for (std::uint32_t i = 0; i < config.num_states(); ++i) {
    if (pos < config.count(i)) return i;
    pos -= config.count(i);
  }
  ADD_FAILURE() << "pos beyond population";
  return 0;
}

/// Checks prefix_count and sample_class against dense scans, everywhere.
template <typename Config>
void expect_index_consistent(const Config& config) {
  std::uint64_t cumulative = 0;
  for (std::uint32_t i = 0; i < config.num_states(); ++i) {
    EXPECT_EQ(config.prefix_count(i), cumulative) << "prefix at " << i;
    cumulative += config.count(i);
  }
  EXPECT_EQ(config.prefix_count(config.num_states()), cumulative);
  EXPECT_EQ(cumulative, config.population_size());
  for (std::uint64_t pos = 0; pos < config.population_size(); ++pos) {
    EXPECT_EQ(config.sample_class(pos), sample_class_dense(config, pos))
        << "pos " << pos;
  }
}

TEST(Fenwick, PrefixAndSampleAgreeWithDenseScan) {
  CountsConfiguration<Epidemic> config(std::vector<int>{});
  config.add(10, 3);
  config.add(20, 0);  // registered, zero count
  config.add(30, 5);
  config.add(40, 1);
  expect_index_consistent(config);
}

TEST(Fenwick, PointUpdatesKeepTheIndexExact) {
  CountsConfiguration<Epidemic> config(std::vector<int>{});
  util::Rng rng(99);
  std::vector<std::uint32_t> idx;
  for (int s = 0; s < 37; ++s) {
    idx.push_back(config.add(s, rng.below(9)));
  }
  expect_index_consistent(config);
  // Interleave adds and removes, re-checking the whole index each round.
  for (int round = 0; round < 50; ++round) {
    const auto i = idx[static_cast<std::size_t>(rng.below(idx.size()))];
    if (rng.coin() && config.count(i) > 0) {
      config.remove_at(i, 1 + rng.below(config.count(i)));
    } else {
      config.add_at(i, 1 + rng.below(4));
    }
  }
  expect_index_consistent(config);
}

TEST(Fenwick, GrowthAppendsKeepTheIndexExact) {
  // Appending entries exercises tree_append for every lowbit shape
  // (including power-of-two boundaries, whose node spans the whole tree).
  CountsConfiguration<Epidemic> config(std::vector<int>{});
  for (int s = 0; s < 70; ++s) {
    config.add(s, static_cast<std::uint64_t>(s % 4));  // some zero counts
    expect_index_consistent(config);
  }
}

TEST(Fenwick, CompactRebuildsTheIndex) {
  CountsConfiguration<Epidemic> config(std::vector<int>{});
  for (int s = 0; s < 20; ++s) config.add(s, s % 3 == 0 ? 0 : 2);
  config.compact();
  expect_index_consistent(config);
  config.add(100, 7);
  expect_index_consistent(config);
}

TEST(Fenwick, LiveStateCountTracksNonzeroEntries) {
  CountsConfiguration<Epidemic> config(std::vector<int>{});
  EXPECT_EQ(config.num_live_states(), 0u);
  const auto a = config.add(1, 4);
  const auto b = config.add(2, 1);
  config.index_of(3);  // registered with count 0: not live
  EXPECT_EQ(config.num_states(), 3u);
  EXPECT_EQ(config.num_live_states(), 2u);
  config.remove_at(b, 1);
  EXPECT_EQ(config.num_live_states(), 1u);
  config.add_at(b, 2);
  EXPECT_EQ(config.num_live_states(), 2u);
  config.remove_at(a, 4);
  config.compact();
  // id2 (trailing, dead) is trimmed; id0 (interior, dead) is released to
  // the free list but keeps its slot, so the arena extent is 2.
  EXPECT_EQ(config.num_states(), 2u);
  EXPECT_EQ(config.num_allocated_states(), 1u);
  EXPECT_EQ(config.num_live_states(), 1u);
  EXPECT_EQ(config.count_of(2), 2u);  // the live state's id survived
}

TEST(Fenwick, SampleClassNeverReturnsZeroCountEntries) {
  CountsConfiguration<Epidemic> config(std::vector<int>{});
  config.add(0, 2);
  config.add(1, 0);
  config.add(2, 3);
  config.add(3, 0);
  for (std::uint64_t pos = 0; pos < config.population_size(); ++pos) {
    const auto idx = config.sample_class(pos);
    EXPECT_GT(config.count(idx), 0u) << "pos " << pos;
  }
}

// ---------------------------------------------------------------------------
// Engine edge cases on degenerate populations.
// ---------------------------------------------------------------------------

TEST(CountsEdge, EmptyPopulationStepsAreCountedNoOps) {
  Epidemic proto{0};
  BatchedSimulator<Epidemic> sim(proto, 1);
  sim.step(100);
  EXPECT_EQ(sim.interactions(), 100u);
  EXPECT_EQ(sim.config().population_size(), 0u);
}

TEST(CountsEdge, EmptyPopulationRunUntilTerminates) {
  Epidemic proto{0};
  BatchedSimulator<Epidemic> sim(proto, 1);
  const auto result = sim.run_until(
      [](const CountsConfiguration<Epidemic>&, std::uint64_t) {
        return false;
      },
      1000);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.interactions, 1000u);
}

TEST(CountsEdge, SingleAgentNeverInteractsButCounts) {
  Epidemic proto{1};
  BatchedSimulator<Epidemic> sim(proto, 1);
  sim.step(50);
  EXPECT_EQ(sim.interactions(), 50u);
  EXPECT_EQ(sim.config().count_of(1), 1u);  // the lone infected agent
  EXPECT_EQ(sim.config().population_size(), 1u);
}

TEST(CountsEdge, SingleStatePopulationIsAFixedPoint) {
  // All agents already infected: every interaction is (1,1) → (1,1).
  CountsConfiguration<Epidemic> config(std::vector<int>(32, 1));
  Epidemic proto{32};
  BatchedSimulator<Epidemic> sim(proto, config, 7);
  sim.step(5000);
  EXPECT_EQ(sim.interactions(), 5000u);
  EXPECT_EQ(sim.config().count_of(1), 32u);
  EXPECT_EQ(sim.config().count_of(0), 0u);
}

TEST(CountsEdge, ProbeEveryLargerThanBudgetStillProbesAtTheEnd) {
  Epidemic proto{8};
  BatchedSimulator<Epidemic> sim(proto, 3);
  // probe_every = 10^6 > max_interactions = 40: the chunk is clamped to the
  // budget, so exactly 40 interactions run and the predicate is evaluated
  // once more at the end.
  std::uint64_t probes = 0;
  const auto result = sim.run_until(
      [&](const CountsConfiguration<Epidemic>&, std::uint64_t) {
        ++probes;
        return false;
      },
      40, 1000000);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.interactions, 40u);
  EXPECT_EQ(probes, 2u);  // initial probe + the clamped terminal probe
}

// ---------------------------------------------------------------------------
// Hypergeometric samplers (the machinery behind the batched engine).
// ---------------------------------------------------------------------------

TEST(Hypergeometric, DegenerateCasesAreExact) {
  util::Rng rng(11);
  EXPECT_EQ(sample_hypergeometric(rng, 100, 40, 0), 0u);
  EXPECT_EQ(sample_hypergeometric(rng, 100, 0, 30), 0u);
  EXPECT_EQ(sample_hypergeometric(rng, 100, 100, 30), 30u);
  EXPECT_EQ(sample_hypergeometric(rng, 100, 40, 100), 40u);
}

TEST(Hypergeometric, StaysOnSupport) {
  util::Rng rng(13);
  const std::uint64_t total = 50, successes = 30, draws = 35;
  const std::uint64_t lo = draws + successes - total;  // 15
  const std::uint64_t hi = std::min(draws, successes);  // 30
  for (int i = 0; i < 3000; ++i) {
    const auto k = sample_hypergeometric(rng, total, successes, draws);
    EXPECT_GE(k, lo);
    EXPECT_LE(k, hi);
  }
}

TEST(Hypergeometric, MeanAndVarianceMatchTheory) {
  util::Rng rng(17);
  const std::uint64_t total = 1000, successes = 300, draws = 100;
  const double expected_mean =
      static_cast<double>(draws) * successes / total;  // 30
  // Var = m · (K/N) · (1-K/N) · (N-m)/(N-1) ≈ 18.92
  const double expected_var = draws * 0.3 * 0.7 * (900.0 / 999.0);
  const int trials = 20000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < trials; ++i) {
    const auto k =
        static_cast<double>(sample_hypergeometric(rng, total, successes, draws));
    sum += k;
    sumsq += k * k;
  }
  const double mean = sum / trials;
  const double var = sumsq / trials - mean * mean;
  EXPECT_NEAR(mean, expected_mean, 0.15);       // ±~5 sigma of the mean est.
  EXPECT_NEAR(var, expected_var, expected_var * 0.1);
}

TEST(Hypergeometric, TailRegimeChiSquareMatchesExactPmf) {
  // Regression for the floating-point-residue fallback: huge `total`, tiny
  // `successes` — the regime the leap engine's window splits stress.  The
  // old fallback attributed leftover pmf mass to the *mode*; the fix sends
  // it to the outermost visited support point on the heavier side.  The
  // whole law over the 4-point support must match the exact pmf, computed
  // via falling factorials: p(k) = C(3,k)·d^(k)·(N−d)^((3−k))/N^((3)).
  util::Rng rng(29);
  const std::uint64_t total = 10'000'000'000ull;
  const std::uint64_t successes = 3;
  const std::uint64_t draws = total / 2;
  const int trials = 20000;
  std::array<int, 4> observed{};
  for (int i = 0; i < trials; ++i) {
    const auto k = sample_hypergeometric(rng, total, successes, draws);
    ASSERT_LE(k, successes);
    ++observed[k];
  }
  const double N = static_cast<double>(total);
  const double d = static_cast<double>(draws);
  double chi2 = 0.0;
  for (std::uint64_t k = 0; k <= successes; ++k) {
    double pmf = 1.0;
    for (std::uint64_t j = 0; j < k; ++j) {
      pmf *= (d - static_cast<double>(j)) * static_cast<double>(successes - j) /
             static_cast<double>(j + 1);
    }
    for (std::uint64_t j = 0; j < successes - k; ++j) {
      pmf *= (N - d - static_cast<double>(j));
    }
    for (std::uint64_t j = 0; j < successes; ++j) {
      pmf /= (N - static_cast<double>(j));
    }
    const double expect = pmf * trials;
    chi2 += (observed[k] - expect) * (observed[k] - expect) / expect;
  }
  // 3 d.o.f.: P(χ² > 16.3) ≈ 0.001; fixed seed, so deterministic.
  EXPECT_LT(chi2, 16.3);
}

TEST(Hypergeometric, TailRegimeStaysOnSupport) {
  util::Rng rng(31);
  const std::uint64_t total = 10'000'000'000ull;
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LE(sample_hypergeometric(rng, total, 3, total / 3), 3u);
  }
}

TEST(Hypergeometric, MultivariateDrawsPartitionTheSample) {
  util::Rng rng(19);
  const std::vector<std::uint64_t> counts{500, 0, 300, 200};
  std::vector<std::uint64_t> out;
  for (int i = 0; i < 500; ++i) {
    sample_multivariate_hypergeometric(rng, counts, 250, out);
    ASSERT_EQ(out.size(), counts.size());
    std::uint64_t sum = 0;
    for (std::size_t j = 0; j < out.size(); ++j) {
      EXPECT_LE(out[j], counts[j]);
      sum += out[j];
    }
    EXPECT_EQ(sum, 250u);
    EXPECT_EQ(out[1], 0u);
  }
}

TEST(Hypergeometric, MultivariateMeansAreProportional) {
  util::Rng rng(23);
  const std::vector<std::uint64_t> counts{600, 300, 100};
  std::vector<std::uint64_t> out;
  const int trials = 10000;
  std::vector<double> sums(3, 0.0);
  for (int i = 0; i < trials; ++i) {
    sample_multivariate_hypergeometric(rng, counts, 100, out);
    for (int j = 0; j < 3; ++j) sums[j] += static_cast<double>(out[j]);
  }
  EXPECT_NEAR(sums[0] / trials, 60.0, 0.5);
  EXPECT_NEAR(sums[1] / trials, 30.0, 0.5);
  EXPECT_NEAR(sums[2] / trials, 10.0, 0.5);
}

// ---------------------------------------------------------------------------
// CountsKernel over packed (community, state) keys: the generic machinery
// behaves identically whether Key is a bare state or a composite — the
// community lift reuses it unmodified (pp/community_counts.hpp).
// ---------------------------------------------------------------------------

using PackedKey = CommunityKey<int>;

TEST(CountsKernel, PackedKeyFenwickConsistencyUnderChurn) {
  static_assert(HashableState<PackedKey>);
  CountsKernel<PackedKey> kernel;
  util::Rng rng(11);
  for (int round = 0; round < 200; ++round) {
    const PackedKey key{static_cast<std::uint32_t>(rng.below(4)),
                        static_cast<int>(rng.below(6))};
    kernel.add(key, 1 + rng.below(5));
  }
  expect_index_consistent(kernel);
  // Drain random classes; the Fenwick index must stay exact throughout.
  for (int round = 0; round < 100 && kernel.population_size() > 0; ++round) {
    const auto idx = kernel.sample_class(rng.below(kernel.population_size()));
    kernel.remove_at(idx, 1 + rng.below(kernel.count(idx)));
  }
  expect_index_consistent(kernel);
}

TEST(CountsKernel, PackedKeysWithSameStateDifferentCommunityAreDistinct) {
  CountsKernel<PackedKey> kernel;
  const auto a = kernel.add(PackedKey{0, 7}, 3);
  const auto b = kernel.add(PackedKey{1, 7}, 5);
  EXPECT_NE(a, b);
  EXPECT_EQ(kernel.count_of(PackedKey{0, 7}), 3u);
  EXPECT_EQ(kernel.count_of(PackedKey{1, 7}), 5u);
  EXPECT_EQ(kernel.key(a).community, 0u);
  EXPECT_EQ(kernel.key(b).community, 1u);
  EXPECT_EQ(kernel.key(a).state, kernel.key(b).state);
}

TEST(CountsKernel, PackedKeyCompactKeepsLiveIdsStable) {
  CountsKernel<PackedKey> kernel;
  const auto a = kernel.add(PackedKey{0, 1}, 2);
  const auto b = kernel.add(PackedKey{1, 1}, 4);
  const auto c = kernel.add(PackedKey{1, 2}, 1);
  kernel.remove_at(b, 4);
  const auto version = kernel.registry_version();
  kernel.compact();
  // The dead interior id is released; surviving packed keys keep their ids
  // and their counts — no re-indexing (the property every id-keyed cache
  // in the batched engine relies on, now for community ids too).
  EXPECT_GT(kernel.registry_version(), version);
  EXPECT_EQ(kernel.num_allocated_states(), 2u);
  EXPECT_EQ(kernel.count(a), 2u);
  EXPECT_EQ(kernel.count(c), 1u);
  EXPECT_EQ(kernel.index_of(PackedKey{0, 1}), a);
  EXPECT_EQ(kernel.index_of(PackedKey{1, 2}), c);
  // The reclaimed slot is reused by the next novel packed key.
  EXPECT_EQ(kernel.index_of(PackedKey{3, 9}), b);
  expect_index_consistent(kernel);
}

TEST(CountsKernel, InsertRemoveAgentAreExactUnderChurn) {
  // The churn primitives: one-agent edits must keep counts, totals and the
  // Fenwick index exact through sustained join/leave/corrupt traffic.
  CountsKernel<int> kernel;
  util::Rng rng(23);
  for (int i = 0; i < 64; ++i) kernel.insert_agent(static_cast<int>(i % 7));
  EXPECT_EQ(kernel.population_size(), 64u);
  for (int round = 0; round < 2000; ++round) {
    // leave: uniform victim via Fenwick descent, like the fault runner.
    const auto victim =
        kernel.sample_class(rng.below(kernel.population_size()));
    kernel.remove_agent(victim);
    // join: sometimes a brand-new state (id churn), sometimes an old one.
    kernel.insert_agent(round % 3 == 0 ? 1000 + round
                                       : static_cast<int>(rng.below(7)));
    if (kernel.should_compact()) kernel.compact();
  }
  EXPECT_EQ(kernel.population_size(), 64u);
  std::uint64_t total = 0;
  kernel.for_each([&](int, std::uint64_t c) { total += c; });
  EXPECT_EQ(total, 64u);
  expect_index_consistent(kernel);
  // Bounded allocation: 2000 one-shot novel states passed through, but the
  // compaction policy reclaims them — the registry must not grow linearly
  // with churn history.
  EXPECT_LT(kernel.num_allocated_states(), 128u);
  EXPECT_GT(kernel.compactions(), 0u);
}

TEST(CountsKernel, HintedIndexOfHonorsThePackedKey) {
  CountsKernel<PackedKey> kernel;
  const auto a = kernel.add(PackedKey{0, 5}, 1);
  const auto b = kernel.add(PackedKey{2, 5}, 1);
  // A correct hint is returned as-is; a hint whose key differs (same state,
  // other community) must not be trusted.
  EXPECT_EQ(kernel.index_of(PackedKey{0, 5}, a), a);
  EXPECT_EQ(kernel.index_of(PackedKey{0, 5}, b), a);
  EXPECT_EQ(kernel.index_of(PackedKey{2, 5}, a), b);
}

}  // namespace
}  // namespace ssle::pp
