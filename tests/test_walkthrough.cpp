// Deterministic walkthrough of one AssignRanks_r execution for n = 4,
// r = 2, driving every interaction by hand.  Serves as executable
// documentation of the App. D pipeline:
//   sheriff election → deputization → channel broadcast → labeling →
//   sleep → ranks.
#include <gtest/gtest.h>

#include "core/assign_ranks.hpp"
#include "core/fast_leader_elect.hpp"

namespace ssle::core {
namespace {

class Walkthrough : public ::testing::Test {
 protected:
  void SetUp() override {
    params = Params::make(4, 2);
    for (auto& a : agents) a = ar_initial_state(params);
  }

  /// Drives u and v through one AssignRanks interaction.
  void meet(int u, int v) {
    util::Rng rng(fixed_seed++);
    assign_ranks(params, agents[u], agents[v], rng);
  }

  int count_of(ArType type) const {
    int k = 0;
    for (const auto& a : agents) k += a.type == type;
    return k;
  }

  int index_of(ArType type) const {
    for (int i = 0; i < 4; ++i) {
      if (agents[i].type == type) return i;
    }
    return -1;
  }

  Params params;
  ArState agents[4];
  std::uint64_t fixed_seed = 1;
};

TEST_F(Walkthrough, FullPipelineByHand) {
  // --- Phase 1: leader election.  All agents must mix while in the black
  // box so the minimum identifier reaches everyone before the countdowns
  // expire (the c > 14 condition of Lemma D.10); then exactly one agent
  // leaves as the sheriff and the rest as recipients.
  for (int round = 0; round < 400 && count_of(ArType::kLeaderElection) > 0;
       ++round) {
    meet(0, 1);
    meet(2, 3);
    meet(0, 2);
    meet(1, 3);
    meet(0, 3);
    meet(1, 2);
  }
  ASSERT_EQ(count_of(ArType::kLeaderElection), 0);
  ASSERT_EQ(count_of(ArType::kSheriff), 1);
  ASSERT_EQ(count_of(ArType::kRecipient), 3);
  const int s = index_of(ArType::kSheriff);

  // The sheriff holds the full badge roster {1, 2}.
  EXPECT_EQ(agents[s].low_badge, 1u);
  EXPECT_EQ(agents[s].high_badge, 2u);

  // --- Phase 2: deputization.  The sheriff meets one recipient; badges
  // {1,2} split into {1} and {2} — both become deputies immediately.
  const int d2 = (s + 1) % 4;  // an arbitrary recipient
  meet(s, d2);
  EXPECT_EQ(agents[s].type, ArType::kDeputy);
  EXPECT_EQ(agents[s].deputy_id, 1u);
  EXPECT_EQ(agents[d2].type, ArType::kDeputy);
  EXPECT_EQ(agents[d2].deputy_id, 2u);
  // Each deputy counts its own (implicit) label.
  EXPECT_EQ(agents[s].counter, 1u);
  EXPECT_EQ(agents[d2].counter, 1u);

  // --- Phase 3: channel broadcast.  The deputies exchange counts so both
  // see Σ channel = 2 = r, unlocking labeling (Protocol 10 line 1).
  meet(s, d2);
  EXPECT_EQ(agents[s].channel, (std::vector<std::uint32_t>{1, 1}));
  EXPECT_EQ(agents[d2].channel, (std::vector<std::uint32_t>{1, 1}));

  // --- Phase 4: labeling.  Deputy 1 labels the two remaining recipients.
  const int r1 = index_of(ArType::kRecipient);
  meet(s, r1);
  EXPECT_EQ(agents[r1].label, (Label{1, 2}));
  int r2 = -1;
  for (int i = 0; i < 4; ++i) {
    if (agents[i].type == ArType::kRecipient && !agents[i].label.valid()) {
      r2 = i;
    }
  }
  ASSERT_NE(r2, -1);
  meet(s, r2);
  EXPECT_EQ(agents[r2].label, (Label{1, 3}));
  EXPECT_EQ(agents[s].counter, 3u);

  // --- Phase 5: once Σ channel = n = 4, agents fall asleep.
  meet(s, d2);  // deputies sync: channel = {3, 1} → Σ = 4 → sleep
  EXPECT_EQ(agents[s].type, ArType::kSleeper);
  EXPECT_EQ(agents[d2].type, ArType::kSleeper);

  // Sleep spreads to the recipients on contact (they inherit the complete
  // channel in the same interaction, Protocol 7 lines 8–9).
  meet(s, r1);
  meet(d2, r2);
  EXPECT_EQ(agents[r1].type, ArType::kSleeper);
  EXPECT_EQ(agents[r2].type, ArType::kSleeper);
  EXPECT_EQ(agents[r1].channel, (std::vector<std::uint32_t>{3, 1}));

  // --- Phase 6: after c_sleep·log n own interactions the sleepers wake
  // and take their lexicographic ranks: deputy1 → 1, r1 → 2, r2 → 3,
  // deputy2 → channel[1] sum + 1 = 4.
  for (std::uint32_t step = 0; step < 4 * params.sleep_max; ++step) {
    meet(s, r1);
    meet(d2, r2);
    meet(s, r2);
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(agents[i].type, ArType::kRanked) << "agent " << i;
  }
  EXPECT_EQ(agents[s].rank, 1u);   // label (1,1)
  EXPECT_EQ(agents[r1].rank, 2u);  // label (1,2)
  EXPECT_EQ(agents[r2].rank, 3u);  // label (1,3)
  EXPECT_EQ(agents[d2].rank, 4u);  // label (2,1) → 3 + 1
}

TEST_F(Walkthrough, SecondSheriffScenarioIsPossibleUnderBadMixing) {
  // Executable documentation of *why* the protocol needs verification:
  // if an agent never hears the minimum identifier while in the black box
  // (pathological scheduling), it can also declare itself sheriff.  The
  // resulting double ranking is exactly what DetectCollision_r catches.
  for (int round = 0; round < 400; ++round) {
    meet(0, 1);  // agents 2, 3 never meet another LE agent...
    if (agents[0].type != ArType::kLeaderElection &&
        agents[1].type != ArType::kLeaderElection) {
      break;
    }
  }
  const int settled = agents[0].type == ArType::kSheriff ? 0 : 1;
  for (int round = 0; round < 400 &&
                      agents[2].type == ArType::kLeaderElection;
       ++round) {
    meet(2, settled);  // ...only settled non-LE agents
  }
  // Agent 2 believed its own identifier was the minimum it ever saw.
  EXPECT_EQ(count_of(ArType::kSheriff) + count_of(ArType::kDeputy), 2);
}

}  // namespace
}  // namespace ssle::core
