#include "core/detect_collision.hpp"

#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "pp/scheduler.hpp"

namespace ssle::core {
namespace {

/// Standalone DetectCollision harness: agents = (rank, DcState), running
/// the module directly (as Lemma E.1 analyses it).
struct DcHarness {
  Params params;
  std::vector<std::uint32_t> ranks;
  std::vector<DcState> states;
  pp::UniformScheduler sched;
  util::Rng rng;

  DcHarness(const Params& p, std::vector<std::uint32_t> rank_vector,
            std::uint64_t seed)
      : params(p),
        ranks(std::move(rank_vector)),
        sched(static_cast<std::uint32_t>(ranks.size()), seed),
        rng(util::substream(seed, 4)) {
    for (const auto rank : ranks) {
      states.push_back(dc_initial_state(params, rank));
    }
  }

  void step(std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      const auto [a, b] = sched.next();
      detect_collision(params, ranks[a], states[a], ranks[b], states[b], rng);
    }
  }

  bool any_error() const {
    for (const auto& s : states) {
      if (s.error) return true;
    }
    return false;
  }

  /// Runs until ⊤ appears or budget exhausted; returns interactions used.
  std::uint64_t run_until_error(std::uint64_t budget) {
    std::uint64_t t = 0;
    while (t < budget && !any_error()) {
      step(1);
      ++t;
    }
    return t;
  }
};

std::vector<std::uint32_t> identity_ranking(std::uint32_t n) {
  std::vector<std::uint32_t> ranks(n);
  for (std::uint32_t i = 0; i < n; ++i) ranks[i] = i + 1;
  return ranks;
}

TEST(DcInitialState, HoldsPreMixedSlices) {
  const Params p = Params::make(8, 4);  // groups of size 4
  const DcState s = dc_initial_state(p, 2);
  const std::uint32_t m = p.group_size(p.group_of(2));
  ASSERT_EQ(s.msgs.size(), m);
  // Every bucket holds the agent's contiguous slice, content 1.
  const std::uint32_t ids = p.ids_per_rank(p.group_of(2));
  const std::uint32_t slice = ids / m;
  for (const auto& bucket : s.msgs) {
    ASSERT_EQ(bucket.size(), slice);
    for (const auto& msg : bucket) EXPECT_EQ(msg.content, 1u);
  }
  EXPECT_EQ(s.signature, 1u);
  EXPECT_EQ(s.counter, 1u);
  for (const auto o : s.observations) EXPECT_EQ(o, 1u);
}

TEST(DcInitialState, SlicesPartitionTheIdSpace) {
  const Params p = Params::make(12, 4);
  const std::uint32_t group = p.group_of(1);
  const std::uint32_t m = p.group_size(group);
  const std::uint32_t ids = p.ids_per_rank(group);
  // Union of all agents' slices for rank 1 covers [1, ids] exactly once.
  std::vector<int> seen(ids + 1, 0);
  for (std::uint32_t pos = 0; pos < m; ++pos) {
    const std::uint32_t rank = p.group_begin(group) + pos;
    const DcState s = dc_initial_state(p, rank);
    for (const auto& msg : s.msgs[0]) ++seen[msg.id];
  }
  for (std::uint32_t j = 1; j <= ids; ++j) EXPECT_EQ(seen[j], 1) << j;
}

TEST(DetectCollision, DifferentGroupsNoOp) {
  const Params p = Params::make(8, 2);  // several groups
  ASSERT_GT(p.num_groups(), 1u);
  DcState a = dc_initial_state(p, 1);
  DcState b = dc_initial_state(p, 8);
  const DcState a0 = a;
  const DcState b0 = b;
  util::Rng rng(1);
  detect_collision(p, 1, a, 8, b, rng);
  EXPECT_EQ(a, a0);
  EXPECT_EQ(b, b0);
}

TEST(DetectCollision, SameRankImmediateError) {
  const Params p = Params::make(8, 4);
  DcState a = dc_initial_state(p, 3);
  DcState b = dc_initial_state(p, 3);
  // Remove duplicated message overlap so only the rank check can fire.
  util::Rng rng(1);
  detect_collision(p, 3, a, 3, b, rng);
  EXPECT_TRUE(a.error);
  EXPECT_TRUE(b.error);
}

TEST(DetectCollision, DuplicateMessageImmediateError) {
  const Params p = Params::make(8, 4);
  DcState a = dc_initial_state(p, 1);
  DcState b = dc_initial_state(p, 2);
  // Plant a copy of one of a's messages into b.
  b.msgs[0].push_back(a.msgs[0].front());
  std::sort(b.msgs[0].begin(), b.msgs[0].end());
  util::Rng rng(1);
  detect_collision(p, 1, a, 2, b, rng);
  EXPECT_TRUE(a.error);
  EXPECT_TRUE(b.error);
}

TEST(DetectCollision, InconsistentContentRaisesError) {
  const Params p = Params::make(8, 4);
  DcState a = dc_initial_state(p, 1);  // governor of rank 1's messages
  DcState b = dc_initial_state(p, 2);
  // Corrupt one of b's circulating rank-1 messages.
  ASSERT_FALSE(b.msgs[0].empty());
  b.msgs[0].front().content = 999;
  util::Rng rng(1);
  detect_collision(p, 1, a, 2, b, rng);
  EXPECT_TRUE(a.error);
  EXPECT_TRUE(b.error);
}

TEST(DetectCollision, ErrorStateIsAbsorbing) {
  const Params p = Params::make(8, 4);
  DcState a = dc_initial_state(p, 1);
  DcState b = dc_initial_state(p, 2);
  a.error = true;
  util::Rng rng(1);
  detect_collision(p, 1, a, 2, b, rng);
  EXPECT_TRUE(a.error);
  EXPECT_TRUE(b.error);  // ⊤ spreads to the partner
}

TEST(UpdateMessages, RefreshesSignatureOnSchedule) {
  const Params p = Params::make(8, 4);
  DcState a = dc_initial_state(p, 1);
  DcState b = dc_initial_state(p, 2);
  util::Rng rng(5);
  const std::uint32_t period = p.signature_period(p.group_of(1));
  for (std::uint32_t i = 0; i < period + 2; ++i) {
    update_messages(p, 1, a, b, rng);
  }
  EXPECT_NE(a.signature, 1u);  // resampled (space is ≥ 2^20, so ≠ 1 whp)
  // a's own held rank-1 messages and observations match the signature.
  for (const auto& msg : a.msgs[0]) {
    EXPECT_EQ(msg.content, a.signature);
    EXPECT_EQ(a.observations[msg.id - 1], a.signature);
  }
  // b's rank-1 messages were restamped too.
  for (const auto& msg : b.msgs[0]) {
    EXPECT_EQ(msg.content, a.signature);
    EXPECT_EQ(a.observations[msg.id - 1], a.signature);
  }
}

TEST(DcMessageCount, CountsAllBuckets) {
  const Params p = Params::make(8, 4);
  const DcState s = dc_initial_state(p, 1);
  const std::uint32_t group = p.group_of(1);
  EXPECT_EQ(dc_message_count(s),
            static_cast<std::uint64_t>(p.group_size(group)) *
                (p.ids_per_rank(group) / p.group_size(group)));
}

// --- Lemma E.1(a): soundness — no ⊤ from correct init on correct ranking --

class DcSoundness
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(DcSoundness, NoFalsePositiveEver) {
  const auto [n, r] = GetParam();
  const Params p = Params::make(n, r);
  DcHarness h(p, identity_ranking(n), 1234);
  h.step(120000);
  EXPECT_FALSE(h.any_error()) << "n=" << n << " r=" << r;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DcSoundness,
    ::testing::Values(std::tuple{8u, 1u}, std::tuple{8u, 4u},
                      std::tuple{16u, 8u}, std::tuple{24u, 6u},
                      std::tuple{32u, 16u}, std::tuple{33u, 16u},
                      std::tuple{64u, 8u}));

// --- Lemma E.1(b): robust completeness -------------------------------------

class DcCompleteness
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(DcCompleteness, PlantedDuplicateDetected) {
  const auto [n, r] = GetParam();
  const Params p = Params::make(n, r);
  auto ranks = identity_ranking(n);
  ranks[0] = ranks[1];  // plant one duplicate pair
  int detected = 0;
  constexpr int kTrials = 5;
  const std::uint64_t L = Params::log2ceil(n);
  const std::uint64_t budget = 800ull * (n * n / p.r) * L + 400000;
  for (int trial = 0; trial < kTrials; ++trial) {
    DcHarness h(p, ranks, 999 + trial);
    h.run_until_error(budget);
    detected += h.any_error();
  }
  EXPECT_EQ(detected, kTrials) << "n=" << n << " r=" << r;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DcCompleteness,
    ::testing::Values(std::tuple{8u, 4u}, std::tuple{16u, 8u},
                      std::tuple{16u, 4u}, std::tuple{32u, 16u},
                      std::tuple{32u, 4u}, std::tuple{64u, 32u}));

TEST(DcCompletenessExtra, ManyDuplicatesDetectedFast) {
  // Lemma E.3: with ≥ m duplicated agents detection is O(m log m) group
  // interactions — direct meetings dominate.
  const Params p = Params::make(32, 16);
  std::vector<std::uint32_t> ranks(32, 5);  // everyone shares rank 5
  DcHarness h(p, ranks, 77);
  const std::uint64_t t = h.run_until_error(100000);
  EXPECT_TRUE(h.any_error());
  EXPECT_LT(t, 5000u);
}

TEST(DcCompletenessExtra, LightMultiplicityAlsoDetects) {
  const Params p = Params::make(32, 16, MessageMultiplicity::kLight);
  auto ranks = identity_ranking(32);
  ranks[3] = ranks[20];
  DcHarness h(p, ranks, 31);
  h.run_until_error(4000000);
  EXPECT_TRUE(h.any_error());
}

// --- Message conservation under the full module ----------------------------

TEST(DetectCollision, MessagesConservedWhileErrorFree) {
  const Params p = Params::make(16, 8);
  DcHarness h(p, identity_ranking(16), 5);
  std::map<std::uint32_t, std::uint64_t> initial_per_rank;
  const std::uint64_t total_before = [&] {
    std::uint64_t t = 0;
    for (const auto& s : h.states) t += dc_message_count(s);
    return t;
  }();
  h.step(50000);
  ASSERT_FALSE(h.any_error());
  std::uint64_t total_after = 0;
  for (const auto& s : h.states) total_after += dc_message_count(s);
  EXPECT_EQ(total_before, total_after);
}

}  // namespace
}  // namespace ssle::core
